/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: functional
 * execution rate and cycle-level simulation rate (base and with value
 * speculation), so regressions in simulator performance are visible.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "vsim/arch/functional_core.hh"
#include "vsim/core/mask_ops.hh"
#include "vsim/core/ooo_core.hh"
#include "vsim/sim/simulator.hh"
#include "vsim/workloads/workloads.hh"

namespace
{

using namespace vsim;

void
BM_FunctionalExecution(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        arch::FunctionalCore core(prog);
        insts += core.run(100'000'000);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalExecution)->Unit(benchmark::kMillisecond);

void
BM_OooBase(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        core::CoreConfig cfg = sim::baseConfig({8, 48});
        core::OooCore core(prog, cfg);
        insts += core.run().stats.retired;
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OooBase)->Unit(benchmark::kMillisecond);

/**
 * Window-scaling before/after of the sweep domain: identical runs
 * (bit-for-bit, see tests/test_sweepdiff.cc) through the legacy dense
 * O(window) scans vs. the sparse subscriber-list sweeps, under the
 * spec-heavy "good" model whose nonzero network latencies keep many
 * predictions unresolved at once. The dense scan's cost grows with the
 * window while the sparse sweeps track the actual consumer counts, so
 * the gap widens from 64 to 256 entries; scripts/check.sh gates the
 * 256-entry ratio.
 */
void
BM_OooValueSpeculation(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("compress"), 1);
    const int window = static_cast<int>(state.range(0));
    const auto kind = state.range(1) == 0 ? core::SweepKind::Dense
                                          : core::SweepKind::Sparse;
    std::uint64_t insts = 0, simcycles = 0;
    for (auto _ : state) {
        // Always-confident prediction keeps the maximum number of
        // unresolved predictions in flight, so the verification/
        // invalidation network carries its full load.
        core::CoreConfig cfg = sim::vpConfig(
            {8, window}, core::SpecModel::goodModel(),
            core::ConfidenceKind::Always, core::UpdateTiming::Delayed);
        cfg.sweepKind = kind;
        core::OooCore core(prog, cfg);
        const auto stats = core.run().stats;
        insts += stats.retired;
        simcycles += stats.cycles;
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    state.counters["simcycles/s"] = benchmark::Counter(
        static_cast<double>(simcycles), benchmark::Counter::kIsRate);
    state.SetLabel(
        "w" + std::to_string(window)
        + (kind == core::SweepKind::Dense ? "-dense" : "-sparse"));
}
BENCHMARK(BM_OooValueSpeculation)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMillisecond);

/**
 * Same comparison under speculative memory resolution (§3.2,
 * memNeedsValidOps=false): loads carry LSQ dependences in
 * RsEntry::memDeps, so every verification/invalidation wave also
 * tests the memory masks — the sweep domain the subscriber lists
 * narrow is strictly larger here.
 */
void
BM_OooSpecMem(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("compress"), 1);
    const auto kind = state.range(0) == 0 ? core::SweepKind::Dense
                                          : core::SweepKind::Sparse;
    std::uint64_t insts = 0, simcycles = 0;
    for (auto _ : state) {
        core::SpecModel model = core::SpecModel::goodModel();
        model.memNeedsValidOps = false;
        core::CoreConfig cfg = sim::vpConfig(
            {8, 256}, model, core::ConfidenceKind::Real,
            core::UpdateTiming::Delayed);
        cfg.sweepKind = kind;
        core::OooCore core(prog, cfg);
        const auto stats = core.run().stats;
        insts += stats.retired;
        simcycles += stats.cycles;
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    state.counters["simcycles/s"] = benchmark::Counter(
        static_cast<double>(simcycles), benchmark::Counter::kIsRate);
    state.SetLabel(kind == core::SweepKind::Dense ? "specmem-dense"
                                                  : "specmem-sparse");
}
BENCHMARK(BM_OooSpecMem)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/**
 * Before/after of the event-driven wakeup path at a large window:
 * identical runs (bit-for-bit, see tests/test_scheduler.cc) through
 * the legacy O(window)-per-cycle scan vs. the ready-list scheduler.
 * The headline metric is simulated cycles per wall-clock second;
 * compress keeps the 256-entry window occupied, so the per-cycle
 * rescan cost the ready lists remove is fully visible.
 */
void
BM_OooWindow256(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("compress"), 1);
    const auto kind = state.range(0) == 0
                          ? core::SchedulerKind::Scan
                          : core::SchedulerKind::ReadyList;
    std::uint64_t simcycles = 0;
    for (auto _ : state) {
        core::CoreConfig cfg = sim::vpConfig(
            {8, 256}, core::SpecModel::greatModel(),
            core::ConfidenceKind::Real, core::UpdateTiming::Delayed);
        cfg.scheduler = kind;
        core::OooCore core(prog, cfg);
        simcycles += core.run().stats.cycles;
    }
    state.counters["simcycles/s"] = benchmark::Counter(
        static_cast<double>(simcycles), benchmark::Counter::kIsRate);
    state.SetLabel(kind == core::SchedulerKind::Scan ? "scan"
                                                     : "ready-list");
}
BENCHMARK(BM_OooWindow256)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/** The pre-word-scan mask iteration (libstdc++ _Find_first/_Find_next
 *  with a portable test() fallback), kept verbatim as the in-process
 *  baseline for the check.sh mask-scan gate: comparing a fresh run
 *  against a committed snapshot would confound the code change with
 *  ambient machine drift, while an A/B inside one process cancels it. */
template <typename Fn>
void
legacyForEachSetBit(const core::SpecMask &m, Fn &&fn)
{
#if defined(__GLIBCXX__)
    for (std::size_t b = m._Find_first(); b < m.size();
         b = m._Find_next(b)) {
        fn(static_cast<int>(b));
    }
#else
    for (std::size_t b = 0; b < m.size(); ++b) {
        if (m.test(b))
            fn(static_cast<int>(b));
    }
#endif
}

/** First set bit the way the pre-word-scan code found it, or -1. */
int
legacyFindFirst(const core::SpecMask &m)
{
#if defined(__GLIBCXX__)
    const std::size_t b = m._Find_first();
    return b < m.size() ? static_cast<int>(b) : -1;
#else
    for (std::size_t b = 0; b < m.size(); ++b) {
        if (m.test(b))
            return static_cast<int>(b);
    }
    return -1;
#endif
}

/** Per-mask drive of the new word scans, kept out of line. The
 *  benchmark loop re-scans an immutable mask vector, and with full
 *  inlining GCC specializes the legacy nested loops against that
 *  repetition in a way the simulator (whose masks mutate every
 *  cycle) never sees; a real call boundary per mask, which is what
 *  the sweep call sites look like after inlining anyway, keeps the
 *  comparison about the scan itself. */
[[gnu::noinline]] std::uint64_t
driveWordScan(const core::SpecMask &m)
{
    std::uint64_t acc = 0;
    core::mask::forEachSetBit(
        m, [&acc](int b) { acc += std::uint64_t(b) + 1; });
    return acc + std::uint64_t(core::mask::findFirst(m)) + 1;
}

[[gnu::noinline]] std::uint64_t
driveLegacyScan(const core::SpecMask &m)
{
    std::uint64_t acc = 0;
    legacyForEachSetBit(m,
                        [&acc](int b) { acc += std::uint64_t(b) + 1; });
    return acc + std::uint64_t(legacyFindFirst(m)) + 1;
}

/**
 * A/B of the SpecMask set-bit scans: the countr_zero word loops in
 * mask_ops.hh vs. the legacy per-bit iteration above, over the same
 * deterministic mask population in the same process. Masks mirror
 * what the sweeps see: mostly sparse subscriber masks (a handful of
 * consumers in a 512-entry window) plus a dense tail from squash
 * waves. scripts/check.sh gates word/legacy >= 1.0 per density.
 */
void
BM_MaskScan(benchmark::State &state)
{
    const bool word = state.range(0) != 0;
    const int avgBits = static_cast<int>(state.range(1));
    // SplitMix64 so the population is identical for both variants.
    std::uint64_t seed = 0x9e3779b97f4a7c15ull + avgBits;
    auto next = [&seed] {
        std::uint64_t z = (seed += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    };
    std::vector<core::SpecMask> masks(2048);
    for (auto &m : masks) {
        for (int b = 0; b < core::kMaxWindow; ++b) {
            if (next() % core::kMaxWindow
                < static_cast<std::uint64_t>(avgBits))
                m.set(b);
        }
    }
    std::uint64_t scans = 0;
    for (auto _ : state) {
        std::uint64_t acc = 0;
        if (word) {
            for (const auto &m : masks)
                acc += driveWordScan(m);
        } else {
            for (const auto &m : masks)
                acc += driveLegacyScan(m);
        }
        benchmark::DoNotOptimize(acc);
        scans += masks.size();
    }
    state.counters["scan/s"] = benchmark::Counter(
        static_cast<double>(scans), benchmark::Counter::kIsRate);
    state.SetLabel(std::string(word ? "word" : "legacy") + "-b"
                   + std::to_string(avgBits));
}
BENCHMARK(BM_MaskScan)
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({0, 32})
    ->Args({1, 32})
    ->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
