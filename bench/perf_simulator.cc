/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: functional
 * execution rate and cycle-level simulation rate (base and with value
 * speculation), so regressions in simulator performance are visible.
 */

#include <benchmark/benchmark.h>

#include "vsim/arch/functional_core.hh"
#include "vsim/core/ooo_core.hh"
#include "vsim/sim/simulator.hh"
#include "vsim/workloads/workloads.hh"

namespace
{

using namespace vsim;

void
BM_FunctionalExecution(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        arch::FunctionalCore core(prog);
        insts += core.run(100'000'000);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalExecution)->Unit(benchmark::kMillisecond);

void
BM_OooBase(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        core::CoreConfig cfg = sim::baseConfig({8, 48});
        core::OooCore core(prog, cfg);
        insts += core.run().stats.retired;
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OooBase)->Unit(benchmark::kMillisecond);

void
BM_OooValueSpeculation(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        core::CoreConfig cfg = sim::vpConfig(
            {8, 48}, core::SpecModel::greatModel(),
            core::ConfidenceKind::Real, core::UpdateTiming::Delayed);
        core::OooCore core(prog, cfg);
        insts += core.run().stats.retired;
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OooValueSpeculation)->Unit(benchmark::kMillisecond);

/**
 * Before/after of the event-driven wakeup path at a large window:
 * identical runs (bit-for-bit, see tests/test_scheduler.cc) through
 * the legacy O(window)-per-cycle scan vs. the ready-list scheduler.
 * The headline metric is simulated cycles per wall-clock second;
 * compress keeps the 256-entry window occupied, so the per-cycle
 * rescan cost the ready lists remove is fully visible.
 */
void
BM_OooWindow256(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("compress"), 1);
    const auto kind = state.range(0) == 0
                          ? core::SchedulerKind::Scan
                          : core::SchedulerKind::ReadyList;
    std::uint64_t simcycles = 0;
    for (auto _ : state) {
        core::CoreConfig cfg = sim::vpConfig(
            {8, 256}, core::SpecModel::greatModel(),
            core::ConfidenceKind::Real, core::UpdateTiming::Delayed);
        cfg.scheduler = kind;
        core::OooCore core(prog, cfg);
        simcycles += core.run().stats.cycles;
    }
    state.counters["simcycles/s"] = benchmark::Counter(
        static_cast<double>(simcycles), benchmark::Counter::kIsRate);
    state.SetLabel(kind == core::SchedulerKind::Scan ? "scan"
                                                     : "ready-list");
}
BENCHMARK(BM_OooWindow256)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
