/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: functional
 * execution rate and cycle-level simulation rate (base and with value
 * speculation), so regressions in simulator performance are visible.
 */

#include <benchmark/benchmark.h>

#include "vsim/arch/functional_core.hh"
#include "vsim/core/ooo_core.hh"
#include "vsim/sim/simulator.hh"
#include "vsim/workloads/workloads.hh"

namespace
{

using namespace vsim;

void
BM_FunctionalExecution(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        arch::FunctionalCore core(prog);
        insts += core.run(100'000'000);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalExecution)->Unit(benchmark::kMillisecond);

void
BM_OooBase(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        core::CoreConfig cfg = sim::baseConfig({8, 48});
        core::OooCore core(prog, cfg);
        insts += core.run().stats.retired;
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OooBase)->Unit(benchmark::kMillisecond);

void
BM_OooValueSpeculation(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        core::CoreConfig cfg = sim::vpConfig(
            {8, 48}, core::SpecModel::greatModel(),
            core::ConfidenceKind::Real, core::UpdateTiming::Delayed);
        core::OooCore core(prog, cfg);
        insts += core.run().stats.retired;
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OooValueSpeculation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
