/**
 * @file
 * Ablation G (paper §3.5): issue-selection policy. The paper fixes
 * selection to "branches and loads first, non-speculative preferred
 * over speculative, oldest first" and explicitly leaves selection for
 * speculative execution as future research; this experiment runs that
 * exploration over four policies on the 8/48 machine (great model)
 * under real and oracle confidence.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::SelectPolicy;
    using core::SpecModel;
    using core::UpdateTiming;

    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::BaseRuns base_runs(opt);
    const sim::MachineConfig m{8, 48};

    const std::vector<std::pair<const char *, SelectPolicy>> policies = {
        {"typed+spec-last (paper)", SelectPolicy::TypedSpecLast},
        {"typed only", SelectPolicy::TypedOnly},
        {"oldest first", SelectPolicy::OldestFirst},
        {"typed+spec-first", SelectPolicy::TypedSpecFirst},
    };

    for (ConfidenceKind conf :
         {ConfidenceKind::Real, ConfidenceKind::Oracle}) {
        std::printf("== Ablation: selection policy (8/48, great, %s "
                    "confidence, immediate update) ==\n\n",
                    conf == ConfidenceKind::Real ? "real" : "oracle");
        TextTable table;
        table.setHeader({"policy", "hmean speedup"});
        for (const auto &[name, policy] : policies) {
            std::vector<double> speedups;
            for (const std::string &wname : bench::workloadNames(opt)) {
                SpecModel model = SpecModel::greatModel();
                model.selectPolicy = policy;
                const auto vp = sim::runWorkload(
                    wname, opt.scale,
                    sim::vpConfig(m, model, conf,
                                  UpdateTiming::Immediate));
                speedups.push_back(
                    sim::speedup(base_runs.get(m, wname), vp));
            }
            table.addRow(
                {name, TextTable::fmt(harmonicMean(speedups), 3)});
        }
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
