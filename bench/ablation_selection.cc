/**
 * @file
 * Ablation G (paper §3.5): issue-selection policy. The paper fixes
 * selection to "branches and loads first, non-speculative preferred
 * over speculative, oldest first" and explicitly leaves selection for
 * speculative execution as future research; this experiment runs that
 * exploration over four policies on the 8/48 machine (great model)
 * under real and oracle confidence.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::SelectPolicy;
    using core::SpecModel;
    using core::UpdateTiming;

    const bench::Options opt = bench::parseOptions(argc, argv);
    const sim::MachineConfig m{8, 48};

    const std::vector<std::pair<const char *, SelectPolicy>> policies = {
        {"typed+spec-last (paper)", SelectPolicy::TypedSpecLast},
        {"typed only", SelectPolicy::TypedOnly},
        {"oldest first", SelectPolicy::OldestFirst},
        {"typed+spec-first", SelectPolicy::TypedSpecFirst},
    };
    const ConfidenceKind confs[] = {ConfidenceKind::Real,
                                    ConfidenceKind::Oracle};

    bench::Sweep sweep(opt);
    const auto wnames = bench::workloadNames(opt);
    std::vector<int> base_idx;
    for (const std::string &wname : wnames)
        base_idx.push_back(sweep.addBase(m, wname));
    // vp_idx[conf][policy][workload]
    std::vector<std::vector<std::vector<int>>> vp_idx(2);
    for (std::size_t c = 0; c < 2; ++c) {
        vp_idx[c].resize(policies.size());
        for (std::size_t p = 0; p < policies.size(); ++p) {
            for (const std::string &wname : wnames) {
                SpecModel model = SpecModel::greatModel();
                model.selectPolicy = policies[p].second;
                vp_idx[c][p].push_back(sweep.add(
                    m, wname,
                    sim::vpConfig(m, model, confs[c],
                                  UpdateTiming::Immediate)));
            }
        }
    }
    sweep.run();

    for (std::size_t c = 0; c < 2; ++c) {
        std::printf("== Ablation: selection policy (8/48, great, %s "
                    "confidence, immediate update) ==\n\n",
                    confs[c] == ConfidenceKind::Real ? "real"
                                                     : "oracle");
        TextTable table;
        table.setHeader({"policy", "hmean speedup"});
        for (std::size_t p = 0; p < policies.size(); ++p) {
            std::vector<double> speedups;
            for (std::size_t w = 0; w < wnames.size(); ++w)
                speedups.push_back(
                    sweep.speedup(base_idx[w], vp_idx[c][p][w]));
            table.addRow({policies[p].first,
                          TextTable::fmt(harmonicMean(speedups), 3)});
        }
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
