/**
 * @file
 * Ablation E: value-predictor choice — the paper's order-4 FCM
 * context predictor versus last-value, 2-delta stride and an
 * FCM+stride hybrid — on the 8/48 machine, great model, oracle
 * confidence and immediate updates (so raw predictor coverage is what
 * differentiates the runs). Reports prediction accuracy and speedup.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::CoreConfig;
    using core::SpecModel;
    using core::UpdateTiming;

    const bench::Options opt = bench::parseOptions(argc, argv);
    const sim::MachineConfig m{8, 48};
    const std::vector<const char *> preds = {"fcm", "last-value",
                                             "stride", "hybrid"};

    bench::Sweep sweep(opt);
    std::vector<int> base_idx;
    std::vector<std::vector<int>> vp_idx(preds.size());
    for (const std::string &wname : bench::workloadNames(opt))
        base_idx.push_back(sweep.addBase(m, wname));
    for (std::size_t p = 0; p < preds.size(); ++p) {
        for (const std::string &wname : bench::workloadNames(opt)) {
            CoreConfig cfg =
                sim::vpConfig(m, SpecModel::greatModel(),
                              ConfidenceKind::Oracle,
                              UpdateTiming::Immediate);
            cfg.valuePredictor = preds[p];
            vp_idx[p].push_back(
                sweep.add(m, wname, cfg,
                          m.label() + " " + std::string(preds[p])));
        }
    }
    sweep.run();

    std::printf("== Ablation: value predictor (8/48, great, oracle "
                "confidence, immediate update) ==\n\n");
    TextTable table;
    table.setHeader({"predictor", "hmean speedup", "mean accuracy %"});

    for (std::size_t p = 0; p < preds.size(); ++p) {
        std::vector<double> speedups, accs;
        for (std::size_t w = 0; w < base_idx.size(); ++w) {
            const auto &vp = sweep.at(vp_idx[p][w]);
            speedups.push_back(sweep.speedup(base_idx[w], vp_idx[p][w]));
            accs.push_back(100.0 * vp.stats.predictionAccuracy());
        }
        table.addRow({preds[p],
                      TextTable::fmt(harmonicMean(speedups), 3),
                      TextTable::fmt(arithmeticMean(accs), 1)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
