/**
 * @file
 * Ablation E: value-predictor choice — the paper's order-4 FCM
 * context predictor versus last-value, 2-delta stride and an
 * FCM+stride hybrid — on the 8/48 machine, great model, oracle
 * confidence and immediate updates (so raw predictor coverage is what
 * differentiates the runs). Reports prediction accuracy and speedup.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::CoreConfig;
    using core::SpecModel;
    using core::UpdateTiming;

    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::BaseRuns base_runs(opt);
    const sim::MachineConfig m{8, 48};

    std::printf("== Ablation: value predictor (8/48, great, oracle "
                "confidence, immediate update) ==\n\n");
    TextTable table;
    table.setHeader({"predictor", "hmean speedup", "mean accuracy %"});

    for (const char *pred :
         {"fcm", "last-value", "stride", "hybrid"}) {
        std::vector<double> speedups, accs;
        for (const std::string &wname : bench::workloadNames(opt)) {
            CoreConfig cfg =
                sim::vpConfig(m, SpecModel::greatModel(),
                              ConfidenceKind::Oracle,
                              UpdateTiming::Immediate);
            cfg.valuePredictor = pred;
            const auto vp = sim::runWorkload(wname, opt.scale, cfg);
            speedups.push_back(
                sim::speedup(base_runs.get(m, wname), vp));
            accs.push_back(100.0 * vp.stats.predictionAccuracy());
        }
        table.addRow({pred, TextTable::fmt(harmonicMean(speedups), 3),
                      TextTable::fmt(arithmeticMean(accs), 1)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
