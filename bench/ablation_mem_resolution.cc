/**
 * @file
 * Ablation: memory resolution policy (paper §3.2) — memory operations
 * issued only with *valid* addresses (the paper's evaluated
 * configuration: loads and stores wait for address verification plus
 * verifyAddrToMem) versus *speculative* memory resolution
 * (memNeedsValidOps=false: loads issue with speculative addresses and
 * forward speculative store data; the LSQ tracks the memory-carried
 * dependences and a mispredicted address or forwarded value kills and
 * reissues the load through the invalidation network).
 *
 * Swept across all three named latency models on the 8/48 machine.
 * The axis matters most for super (verifyAddrToMem = 0 already hides
 * the verification latency, so the remaining cost is the valid-ops
 * *ordering* constraint itself); under real confidence the speculative
 * policy pays for its extra nullifications with invalidateToReissue
 * cycles per violated load.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::SpecModel;
    using core::UpdateTiming;

    const bench::Options opt = bench::parseOptions(argc, argv);
    const sim::MachineConfig m{8, 48};
    const char *const models[] = {"super", "great", "good"};

    bench::Sweep sweep(opt);
    const auto wnames = bench::workloadNames(opt);
    std::vector<int> base_idx;
    // valid_idx/spec_idx[model][workload]
    std::vector<std::vector<int>> valid_idx(3), spec_idx(3);
    for (const std::string &wname : wnames)
        base_idx.push_back(sweep.addBase(m, wname));
    for (std::size_t mi = 0; mi < 3; ++mi) {
        for (const std::string &wname : wnames) {
            const SpecModel valid_model = SpecModel::byName(models[mi]);
            valid_idx[mi].push_back(sweep.add(
                m, wname,
                sim::vpConfig(m, valid_model, ConfidenceKind::Real,
                              UpdateTiming::Delayed)));

            SpecModel spec_model = SpecModel::byName(models[mi]);
            spec_model.memNeedsValidOps = false;
            spec_idx[mi].push_back(sweep.add(
                m, wname,
                sim::vpConfig(m, spec_model, ConfidenceKind::Real,
                              UpdateTiming::Delayed),
                m.label() + " spec-mem"));
        }
    }
    sweep.run();

    for (std::size_t mi = 0; mi < 3; ++mi) {
        std::printf("== Ablation: memory resolution policy (8/48, %s, "
                    "real confidence, delayed update) ==\n\n",
                    models[mi]);
        TextTable table;
        table.setHeader({"workload", "valid-ops", "spec-mem",
                         "nullified(valid)", "nullified(spec)",
                         "forwarded(spec)"});

        std::vector<double> sp_valid, sp_spec;
        for (std::size_t w = 0; w < wnames.size(); ++w) {
            const auto &vr = sweep.at(valid_idx[mi][w]);
            const auto &sr = sweep.at(spec_idx[mi][w]);
            const double v =
                sweep.speedup(base_idx[w], valid_idx[mi][w]);
            const double s =
                sweep.speedup(base_idx[w], spec_idx[mi][w]);
            sp_valid.push_back(v);
            sp_spec.push_back(s);
            table.addRow({wnames[w], TextTable::fmt(v, 3),
                          TextTable::fmt(s, 3),
                          std::to_string(vr.stats.nullifications),
                          std::to_string(sr.stats.nullifications),
                          std::to_string(sr.stats.loadsForwarded)});
        }
        table.addRow({"(hmean)",
                      TextTable::fmt(harmonicMean(sp_valid), 3),
                      TextTable::fmt(harmonicMean(sp_spec), 3), "", "",
                      ""});
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
