/**
 * @file
 * Shared plumbing for the experiment (bench) binaries: command-line
 * options, the benchmark list, and cached base-machine runs.
 *
 * Every binary accepts:
 *   --quick        3 workloads, middle machine only (smoke mode)
 *   --scale N      override the per-workload work factor
 */

#ifndef VSPEC_BENCH_BENCH_UTIL_HH
#define VSPEC_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "vsim/base/stats.hh"
#include "vsim/sim/simulator.hh"
#include "vsim/workloads/workloads.hh"

namespace bench
{

struct Options
{
    bool quick = false;
    int scale = -1; //!< -1 = per-workload default
};

inline Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            opt.quick = true;
        } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
            opt.scale = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--scale N]\n", argv[0]);
            std::exit(2);
        }
    }
    return opt;
}

inline std::vector<std::string>
workloadNames(const Options &opt)
{
    std::vector<std::string> names;
    for (const auto &w : vsim::workloads::all())
        names.push_back(w.name);
    if (opt.quick)
        names = {"compress", "m88k", "queens"};
    return names;
}

inline std::vector<vsim::sim::MachineConfig>
machines(const Options &opt)
{
    if (opt.quick)
        return {{8, 48}};
    return vsim::sim::paperMachines();
}

/** Cache of base-machine runs keyed by (machine label, workload). */
class BaseRuns
{
  public:
    explicit BaseRuns(const Options &opt) : opt(opt) {}

    const vsim::sim::RunResult &
    get(const vsim::sim::MachineConfig &m, const std::string &workload)
    {
        const std::string key = m.label() + ":" + workload;
        auto it = cache.find(key);
        if (it == cache.end()) {
            it = cache
                     .emplace(key,
                              vsim::sim::runWorkload(
                                  workload, opt.scale,
                                  vsim::sim::baseConfig(m)))
                     .first;
        }
        return it->second;
    }

  private:
    Options opt;
    std::map<std::string, vsim::sim::RunResult> cache;
};

} // namespace bench

#endif // VSPEC_BENCH_BENCH_UTIL_HH
