/**
 * @file
 * Shared plumbing for the experiment (bench) binaries: command-line
 * options and the declarative sweep front end over the parallel sweep
 * engine (vsim/sim/sweep).
 *
 * Every binary accepts:
 *   --quick        3 workloads, middle machine only (smoke mode)
 *   --scale N      override the per-workload work factor
 *   --jobs N       worker threads (default: one per hardware thread;
 *                  results are bit-identical for every N)
 *   --json PATH    also write all runs as a JSON array
 *   --csv PATH     also write all runs as CSV
 *   --metrics-interval N  sample interval metrics every N cycles
 *   --metrics PATH        write every run's interval series as CSV
 *   --trace-json PATH     write the sweep execution timeline as
 *                         Chrome/Perfetto trace_event JSON
 *   --progress     one stderr line per finished run
 *
 * The usage pattern is two-phase: enqueue every cell of the
 * cross-product with Sweep::add()/addBase(), call Sweep::run() once
 * (this is where the worker pool earns its keep), then assemble the
 * tables from the indexed results.
 */

#ifndef VSPEC_BENCH_BENCH_UTIL_HH
#define VSPEC_BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "vsim/base/logging.hh"
#include "vsim/base/stats.hh"
#include "vsim/sim/report.hh"
#include "vsim/sim/simulator.hh"
#include "vsim/sim/sweep.hh"
#include "vsim/workloads/workloads.hh"

namespace bench
{

struct Options
{
    bool quick = false;
    int scale = -1; //!< -1 = per-workload default
    int jobs = vsim::sim::SweepRunner::defaultJobs();
    std::string jsonPath; //!< write runs as JSON when non-empty
    std::string csvPath;  //!< write runs as CSV when non-empty
    std::uint64_t metricsInterval = 0; //!< per-run sampling period
    std::string metricsPath;   //!< interval series CSV when non-empty
    std::string traceJsonPath; //!< sweep timeline JSON when non-empty
    bool progress = false;     //!< stderr line per finished run
};

[[noreturn]] inline void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--quick] [--scale N] [--jobs N] "
                 "[--json PATH] [--csv PATH]\n"
                 "          [--metrics-interval N] [--metrics PATH] "
                 "[--trace-json PATH] [--progress]\n",
                 argv0);
    std::exit(2);
}

/**
 * Parse a full-token positive integer; anything else (trailing
 * garbage, empty, zero, negative, overflow) is a usage error.
 * `--scale abc` used to silently become scale 0 through atoi.
 */
inline int
parsePositiveInt(const char *argv0, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || v <= 0
        || v > std::numeric_limits<int>::max()) {
        std::fprintf(stderr, "expected a positive integer, got '%s'\n",
                     text);
        usage(argv0);
    }
    return static_cast<int>(v);
}

inline Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--quick") == 0) {
            opt.quick = true;
        } else if (std::strcmp(argv[i], "--scale") == 0) {
            opt.scale =
                parsePositiveInt(argv[0], need_value("--scale"));
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            opt.jobs = parsePositiveInt(argv[0], need_value("--jobs"));
        } else if (std::strcmp(argv[i], "--json") == 0) {
            opt.jsonPath = need_value("--json");
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            opt.csvPath = need_value("--csv");
        } else if (std::strcmp(argv[i], "--metrics-interval") == 0) {
            opt.metricsInterval = static_cast<std::uint64_t>(
                parsePositiveInt(argv[0],
                                 need_value("--metrics-interval")));
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            opt.metricsPath = need_value("--metrics");
        } else if (std::strcmp(argv[i], "--trace-json") == 0) {
            opt.traceJsonPath = need_value("--trace-json");
        } else if (std::strcmp(argv[i], "--progress") == 0) {
            opt.progress = true;
        } else {
            usage(argv[0]);
        }
    }
    if (!opt.metricsPath.empty() && opt.metricsInterval == 0) {
        std::fprintf(stderr, "--metrics needs --metrics-interval N\n");
        usage(argv[0]);
    }
    return opt;
}

inline std::vector<std::string>
workloadNames(const Options &opt)
{
    return vsim::sim::sweepWorkloads(opt.quick);
}

inline std::vector<vsim::sim::MachineConfig>
machines(const Options &opt)
{
    return vsim::sim::sweepMachines(opt.quick);
}

/** Percentage @p num/@p denom; NaN (rendered "n/a") on empty runs. */
inline double
pct(std::uint64_t num, std::uint64_t denom)
{
    if (denom == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return 100.0 * static_cast<double>(num)
           / static_cast<double>(denom);
}

/**
 * Declarative sweep for one bench binary: enqueue jobs, run them all
 * at once on the worker pool (memoized through the process-wide
 * RunCache, which replaces the old per-binary BaseRuns cache), then
 * read results by index. Identical jobs (same workload/scale/config)
 * added twice share one index, so base runs can be re-requested
 * freely from every table loop.
 */
class Sweep
{
  public:
    explicit Sweep(const Options &opt) : opt(opt) {}

    /** Enqueue a run; returns its result index. */
    int
    add(const vsim::sim::MachineConfig &m, const std::string &workload,
        const vsim::core::CoreConfig &cfg, std::string label = "")
    {
        VSIM_ASSERT(!ran, "Sweep::add after run");
        vsim::sim::SweepJob job;
        job.label = label.empty()
                        ? m.label() + " " + vsim::sim::configLabel(cfg)
                        : std::move(label);
        job.workload = workload;
        job.scale = opt.scale;
        job.cfg = cfg;
        job.cfg.metricsInterval = opt.metricsInterval;
        const std::string key = vsim::sim::jobKey(job);
        auto it = indexByKey.find(key);
        if (it != indexByKey.end())
            return it->second;
        const int idx = static_cast<int>(jobs.size());
        jobs.push_back(std::move(job));
        indexByKey.emplace(key, idx);
        return idx;
    }

    /** Enqueue the no-value-prediction run of @p m / @p workload. */
    int
    addBase(const vsim::sim::MachineConfig &m,
            const std::string &workload)
    {
        return add(m, workload, vsim::sim::baseConfig(m));
    }

    /** Execute all enqueued jobs and emit the requested files. */
    void
    run()
    {
        VSIM_ASSERT(!ran, "Sweep::run called twice");
        vsim::sim::SweepRunner runner(opt.jobs);
        runner.setProgress(opt.progress);
        std::vector<vsim::sim::JobSpan> spans;
        if (!opt.traceJsonPath.empty())
            runner.setSpanSink(&spans);
        results = runner.run(jobs);
        ran = true;
        if (!opt.jsonPath.empty())
            vsim::sim::writeFile(opt.jsonPath,
                                 vsim::sim::toJson(jobs, results));
        if (!opt.csvPath.empty())
            vsim::sim::writeFile(opt.csvPath,
                                 vsim::sim::toCsv(jobs, results));
        if (!opt.metricsPath.empty())
            vsim::sim::writeFile(
                opt.metricsPath,
                vsim::sim::metricsToCsv(jobs, results));
        if (!opt.traceJsonPath.empty())
            vsim::sim::writeFile(
                opt.traceJsonPath,
                vsim::sim::sweepTraceJson(spans) + "\n");
    }

    const vsim::sim::RunResult &
    at(int idx) const
    {
        VSIM_ASSERT(ran, "Sweep::at before run");
        return results.at(static_cast<std::size_t>(idx));
    }

    /** Speedup of run @p vpIdx over run @p baseIdx. */
    double
    speedup(int baseIdx, int vpIdx) const
    {
        return vsim::sim::speedup(at(baseIdx), at(vpIdx));
    }

  private:
    Options opt;
    std::vector<vsim::sim::SweepJob> jobs;
    std::vector<vsim::sim::RunResult> results;
    std::map<std::string, int> indexByKey;
    bool ran = false;
};

} // namespace bench

#endif // VSPEC_BENCH_BENCH_UTIL_HH
