/**
 * @file
 * Ablation A (paper §3.2): compares the four verification approaches —
 * flattened-hierarchical network, hierarchical tag-broadcast wave,
 * retirement-based, and the hybrid — under the great model's latency
 * variables.
 *
 * Two confidence regimes are shown: with *oracle* confidence every
 * eligible instruction is predicted, so dependence chains between
 * unresolved predictions are at most one level deep and hierarchical
 * equals flattened; with *real* confidence speculation is partial,
 * chains of speculatively computed (non-predicted) values grow deeper,
 * and the wave latency of the hierarchical scheme shows. The
 * retirement-based scheme pays the §3.2(a) pitfall of validating only
 * the w oldest instructions per cycle in both regimes.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::SpecModel;
    using core::UpdateTiming;
    using core::VerifyScheme;

    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::BaseRuns base_runs(opt);
    const sim::MachineConfig m{8, 48};

    const std::vector<std::pair<const char *, VerifyScheme>> schemes = {
        {"flattened", VerifyScheme::Flattened},
        {"hierarchical", VerifyScheme::Hierarchical},
        {"retirement", VerifyScheme::RetirementBased},
        {"hybrid", VerifyScheme::Hybrid},
    };

    for (ConfidenceKind conf :
         {ConfidenceKind::Oracle, ConfidenceKind::Real}) {
        std::printf("== Ablation: verification scheme (8/48, great "
                    "latencies, %s confidence) ==\n\n",
                    conf == ConfidenceKind::Oracle ? "oracle" : "real");
        TextTable table;
        std::vector<std::string> header = {"workload"};
        for (const auto &[name, scheme] : schemes)
            header.push_back(name);
        table.setHeader(header);

        std::vector<std::vector<double>> per_scheme(schemes.size());
        for (const std::string &wname : bench::workloadNames(opt)) {
            std::vector<std::string> row = {wname};
            for (std::size_t s = 0; s < schemes.size(); ++s) {
                SpecModel model = SpecModel::greatModel();
                model.verifyScheme = schemes[s].second;
                if (model.verifyScheme == VerifyScheme::Hierarchical)
                    model.invalScheme = core::InvalScheme::Hierarchical;
                const auto vp = sim::runWorkload(
                    wname, opt.scale,
                    sim::vpConfig(m, model, conf,
                                  UpdateTiming::Immediate));
                const double sp =
                    sim::speedup(base_runs.get(m, wname), vp);
                per_scheme[s].push_back(sp);
                row.push_back(TextTable::fmt(sp, 3));
            }
            table.addRow(row);
        }
        std::vector<std::string> mean_row = {"(hmean)"};
        for (const auto &sp : per_scheme)
            mean_row.push_back(TextTable::fmt(harmonicMean(sp), 3));
        table.addRow(mean_row);
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
