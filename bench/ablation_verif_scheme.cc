/**
 * @file
 * Ablation A (paper §3.2): compares the four verification approaches —
 * flattened-hierarchical network, hierarchical tag-broadcast wave,
 * retirement-based, and the hybrid — under the great model's latency
 * variables.
 *
 * Two confidence regimes are shown: with *oracle* confidence every
 * eligible instruction is predicted, so dependence chains between
 * unresolved predictions are at most one level deep and hierarchical
 * equals flattened; with *real* confidence speculation is partial,
 * chains of speculatively computed (non-predicted) values grow deeper,
 * and the wave latency of the hierarchical scheme shows. The
 * retirement-based scheme pays the §3.2(a) pitfall of validating only
 * the w oldest instructions per cycle in both regimes.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::SpecModel;
    using core::UpdateTiming;
    using core::VerifyScheme;

    const bench::Options opt = bench::parseOptions(argc, argv);
    const sim::MachineConfig m{8, 48};

    const std::vector<std::pair<const char *, VerifyScheme>> schemes = {
        {"flattened", VerifyScheme::Flattened},
        {"hierarchical", VerifyScheme::Hierarchical},
        {"retirement", VerifyScheme::RetirementBased},
        {"hybrid", VerifyScheme::Hybrid},
    };
    const ConfidenceKind confs[] = {ConfidenceKind::Oracle,
                                    ConfidenceKind::Real};

    bench::Sweep sweep(opt);
    const auto wnames = bench::workloadNames(opt);
    std::vector<int> base_idx;
    for (const std::string &wname : wnames)
        base_idx.push_back(sweep.addBase(m, wname));
    // vp_idx[conf][workload][scheme]
    std::vector<std::vector<std::vector<int>>> vp_idx(2);
    for (std::size_t c = 0; c < 2; ++c) {
        vp_idx[c].resize(wnames.size());
        for (std::size_t w = 0; w < wnames.size(); ++w) {
            for (std::size_t s = 0; s < schemes.size(); ++s) {
                SpecModel model = SpecModel::greatModel();
                model.verifyScheme = schemes[s].second;
                if (model.verifyScheme == VerifyScheme::Hierarchical)
                    model.invalScheme = core::InvalScheme::Hierarchical;
                vp_idx[c][w].push_back(sweep.add(
                    m, wnames[w],
                    sim::vpConfig(m, model, confs[c],
                                  UpdateTiming::Immediate),
                    m.label() + " " + schemes[s].first));
            }
        }
    }
    sweep.run();

    for (std::size_t c = 0; c < 2; ++c) {
        std::printf("== Ablation: verification scheme (8/48, great "
                    "latencies, %s confidence) ==\n\n",
                    confs[c] == ConfidenceKind::Oracle ? "oracle"
                                                       : "real");
        TextTable table;
        std::vector<std::string> header = {"workload"};
        for (const auto &[name, scheme] : schemes)
            header.push_back(name);
        table.setHeader(header);

        std::vector<std::vector<double>> per_scheme(schemes.size());
        for (std::size_t w = 0; w < wnames.size(); ++w) {
            std::vector<std::string> row = {wnames[w]};
            for (std::size_t s = 0; s < schemes.size(); ++s) {
                const double sp =
                    sweep.speedup(base_idx[w], vp_idx[c][w][s]);
                per_scheme[s].push_back(sp);
                row.push_back(TextTable::fmt(sp, 3));
            }
            table.addRow(row);
        }
        std::vector<std::string> mean_row = {"(hmean)"};
        for (const auto &sp : per_scheme)
            mean_row.push_back(TextTable::fmt(harmonicMean(sp), 3));
        table.addRow(mean_row);
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
