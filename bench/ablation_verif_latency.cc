/**
 * @file
 * Ablation B (paper §6 future work): sensitivity of value-speculation
 * speedup to the Execution–Equality–Verification latency, swept from
 * 0 (great) through 3 cycles on the 8/48 machine with oracle
 * confidence. The paper's central result is that this latency is the
 * performance-critical one ("fast verification latency is found to be
 * essential"); the sweep shows how quickly the benefit decays.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::SpecModel;
    using core::UpdateTiming;

    const bench::Options opt = bench::parseOptions(argc, argv);
    const sim::MachineConfig m{8, 48};

    bench::Sweep sweep(opt);
    const auto wnames = bench::workloadNames(opt);
    std::vector<int> base_idx;
    std::vector<std::vector<int>> vp_idx(wnames.size());
    for (std::size_t w = 0; w < wnames.size(); ++w) {
        base_idx.push_back(sweep.addBase(m, wnames[w]));
        for (int lat = 0; lat <= 3; ++lat) {
            SpecModel model = SpecModel::greatModel();
            model.execToEquality = lat;
            vp_idx[w].push_back(sweep.add(
                m, wnames[w],
                sim::vpConfig(m, model, ConfidenceKind::Oracle,
                              UpdateTiming::Immediate)));
        }
    }
    sweep.run();

    std::printf("== Ablation: Execution-Equality-Verification latency "
                "sweep (8/48, oracle confidence) ==\n\n");
    TextTable table;
    table.setHeader({"workload", "lat=0", "lat=1", "lat=2", "lat=3"});

    std::vector<std::vector<double>> per_lat(4);
    for (std::size_t w = 0; w < wnames.size(); ++w) {
        std::vector<std::string> row = {wnames[w]};
        for (std::size_t lat = 0; lat < 4; ++lat) {
            const double sp =
                sweep.speedup(base_idx[w], vp_idx[w][lat]);
            per_lat[lat].push_back(sp);
            row.push_back(TextTable::fmt(sp, 3));
        }
        table.addRow(row);
    }
    std::vector<std::string> mean_row = {"(hmean)"};
    for (const auto &sp : per_lat)
        mean_row.push_back(TextTable::fmt(harmonicMean(sp), 3));
    table.addRow(mean_row);
    std::printf("%s\n", table.render().c_str());
    return 0;
}
