/**
 * @file
 * vspec-run: command-line driver for the cycle-level simulator. Runs
 * a built-in workload or a VRISC assembly file on a configurable
 * machine, with or without value speculation, and prints the full
 * statistics block. Workload runs go through the sweep engine's
 * process-wide run cache, so repeated configurations inside one
 * invocation are simulated once.
 *
 *   vspec-run --workload m88k --model great --conf real --timing D
 *   vspec-run --asm prog.s --width 16 --window 96 --model super
 *   vspec-run --trace queens.vst --window 512     # replay a recording
 *   vspec-run --workload queens --base --pipeline # pipeline diagram
 *   vspec-run --workload queens --json run.json   # or --json to stdout
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>

#include "vsim/assembler/assembler.hh"
#include "vsim/base/logging.hh"
#include "vsim/core/ooo_core.hh"
#include "vsim/obs/cpi.hh"
#include "vsim/obs/interval.hh"
#include "vsim/obs/trace_export.hh"
#include "vsim/sim/disk_cache.hh"
#include "vsim/sim/report.hh"
#include "vsim/sim/simulator.hh"
#include "vsim/sim/sweep.hh"
#include "vsim/trace/trace_io.hh"
#include "vsim/workloads/workloads.hh"

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s (--workload NAME | --asm FILE | --trace FILE) "
        "[options]\n"
        "  --workload NAME   one of:",
        argv0);
    for (const auto &w : vsim::workloads::all())
        std::fprintf(stderr, " %s", w.name.c_str());
    std::fprintf(
        stderr,
        "\n"
        "  --asm FILE        assemble and run a VRISC .s file\n"
        "  --trace FILE      replay a recorded .vst instruction trace\n"
        "                    (see vspec-tracegen); decode-free and\n"
        "                    digest-identical to direct simulation\n"
        "  --scale N         workload work factor (default: built-in)\n"
        "  --width N         issue width (default 8)\n"
        "  --window N        window size (default 48, max 512)\n"
        "  --fetch-width N   fetch width (default: issue width)\n"
        "  --base            disable value prediction (default)\n"
        "  --model M         super|great|good, or a custom latency\n"
        "                    tuple E,EI,EV,VF,IR,VB,VA such as\n"
        "                    0,0,1,1,1,1,1 (enables prediction)\n"
        "  --verify-scheme V flattened|hierarchical|retirement|hybrid\n"
        "  --inval-scheme I  flattened|hierarchical|complete\n"
        "  --select S        typed-spec-last|typed-only|oldest-first|\n"
        "                    typed-spec-first\n"
        "  --mem-resolution R\n"
        "                    valid: memory ops need valid addresses\n"
        "                    (default, paper §3.2); spec: loads may\n"
        "                    issue with speculative addresses and\n"
        "                    forward speculative store data\n"
        "  --sweep-kind K    dense|sparse verification/invalidation\n"
        "                    sweep domain (identical results; sparse\n"
        "                    is the default, dense the legacy scan)\n"
        "  --conf C          real|oracle|always (default real)\n"
        "  --conf-table-bits N\n"
        "                    log2 confidence-table entries (1..24,\n"
        "                    default 16)\n"
        "  --timing T        D|I  delayed/immediate update (default D)\n"
        "  --predictor P     fcm|last-value|stride|hybrid (default fcm)\n"
        "  --pipeline [A:B]  print the pipeline diagram for cycles\n"
        "                    A..B (default 0:200)\n"
        "  --trace-retain N  keep only the youngest N instructions in\n"
        "                    the pipeline trace (bounds memory)\n"
        "  --trace-json PATH write the pipeline trace as Chrome/\n"
        "                    Perfetto trace_event JSON\n"
        "  --metrics-interval N\n"
        "                    sample interval metrics every N cycles\n"
        "  --metrics PATH    write the interval time series as CSV\n"
        "  --counters [PATH] write the full counter/histogram registry\n"
        "                    as JSON to PATH, or print a text listing\n"
        "                    (with p50/p90/p99 per histogram) if no\n"
        "                    PATH is given\n"
        "  --stacks [PATH]   CPI stack (every cycle charged to one\n"
        "                    category): JSON to PATH, or a text table\n"
        "                    after the stats block if no PATH is given\n"
        "  --ledger PATH     write the speculation ledger (lifecycle\n"
        "                    of every value prediction) as JSON\n"
        "  --ledger-limit N  emit at most N ledger records (default:\n"
        "                    all; the JSON flags truncation)\n"
        "  --shards N        split the run into N interval shards,\n"
        "                    simulated independently and merged into\n"
        "                    one report (see --warmup-insts)\n"
        "  --interval-insts K\n"
        "                    shard every K retired instructions\n"
        "                    instead of a fixed shard count\n"
        "  --warmup-insts W  per-shard detailed-warmup prefix in\n"
        "                    instructions, or 'full' (default): full\n"
        "                    replay from instruction 0, bit-identical\n"
        "                    to the monolithic run (with --sample,\n"
        "                    'full' means one interval of warmup)\n"
        "  --sample N        SimPoint-style sampled replay: cluster\n"
        "                    the trace's intervals into at most N\n"
        "                    phases by basic-block vector, simulate\n"
        "                    one representative per phase in detail\n"
        "                    and weight it by the phase population\n"
        "                    (approximate; excludes --shards/\n"
        "                    --interval-insts)\n"
        "  --sample-interval-insts K\n"
        "                    sampling interval length in instructions\n"
        "                    (default 1000000)\n"
        "  --jobs N          worker threads executing shards or\n"
        "                    sample representatives (default 1)\n"
        "  --progress        print a completion line to stderr\n"
        "  --cache-dir PATH  persistent on-disk run cache: repeated\n"
        "                    runs of the same configuration are served\n"
        "                    from disk instead of re-simulated (also\n"
        "                    via VSIM_CACHE_DIR; ignored for --asm and\n"
        "                    pipeline-traced runs)\n"
        "  --cache-max-bytes N\n"
        "                    cap the cache directory at N bytes,\n"
        "                    evicting least-recently-used entries on\n"
        "                    insert (also via VSIM_CACHE_MAX_BYTES;\n"
        "                    needs a cache directory)\n"
        "  --json [PATH]     emit the statistics as one JSON object\n"
        "                    (to PATH if given, else stdout)\n");
}

/** Full-token positive integer; exits with usage on anything else. */
int
parsePositiveInt(const char *argv0, const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || v <= 0
        || v > std::numeric_limits<int>::max()) {
        std::fprintf(stderr, "%s expects a positive integer, got '%s'\n",
                     flag, text);
        usage(argv0);
        std::exit(2);
    }
    return static_cast<int>(v);
}

/**
 * Full-token positive 64-bit count; exits with usage on anything else
 * (including negative numbers, which strtoull would silently wrap).
 */
std::uint64_t
parsePositiveU64(const char *argv0, const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (text[0] == '-' || text[0] == '+' || end == text || *end != '\0'
        || errno == ERANGE || v == 0) {
        std::fprintf(stderr, "%s expects a positive count, got '%s'\n",
                     flag, text);
        usage(argv0);
        std::exit(2);
    }
    return static_cast<std::uint64_t>(v);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vsim;

    std::string workload, asm_file, trace_file, json_path;
    std::string metrics_path, counters_path, trace_json_path;
    std::string stacks_path, ledger_path, cache_dir;
    std::uint64_t cache_max_bytes = 0;
    int scale = -1;
    std::size_t ledger_limit = 0;
    bool ledger_limit_set = false;
    bool pipeline = false;
    bool warmup_set = false;
    bool jobs_set = false;
    bool json = false;
    bool counters = false;
    bool stacks = false;
    bool progress = false;
    std::uint64_t pipeline_from = 0, pipeline_to = 200;
    core::CoreConfig cfg;
    cfg.issueWidth = 8;
    cfg.windowSize = 48;

    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--workload")) {
            workload = need_value("--workload");
        } else if (!std::strcmp(argv[i], "--asm")) {
            asm_file = need_value("--asm");
        } else if (!std::strcmp(argv[i], "--trace")) {
            trace_file = need_value("--trace");
        } else if (!std::strcmp(argv[i], "--scale")) {
            scale = parsePositiveInt(argv[0], "--scale",
                                     need_value("--scale"));
        } else if (!std::strcmp(argv[i], "--width")) {
            cfg.issueWidth = parsePositiveInt(argv[0], "--width",
                                              need_value("--width"));
        } else if (!std::strcmp(argv[i], "--window")) {
            cfg.windowSize = parsePositiveInt(argv[0], "--window",
                                              need_value("--window"));
            if (cfg.windowSize > core::kMaxWindow) {
                std::fprintf(stderr,
                             "--window %d exceeds the supported "
                             "maximum of %d\n",
                             cfg.windowSize, core::kMaxWindow);
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--fetch-width")) {
            cfg.fetchWidth = parsePositiveInt(
                argv[0], "--fetch-width", need_value("--fetch-width"));
        } else if (!std::strcmp(argv[i], "--base")) {
            cfg.useValuePrediction = false;
        } else if (!std::strcmp(argv[i], "--model")) {
            cfg.useValuePrediction = true;
            try {
                // Keep any scheme overrides given before --model.
                const core::SpecModel prev = cfg.model;
                cfg.model = core::SpecModel::byName(
                    need_value("--model"));
                cfg.model.verifyScheme = prev.verifyScheme;
                cfg.model.invalScheme = prev.invalScheme;
                cfg.model.selectPolicy = prev.selectPolicy;
                cfg.model.branchNeedsValidOps =
                    prev.branchNeedsValidOps;
                cfg.model.memNeedsValidOps = prev.memNeedsValidOps;
            } catch (const FatalError &err) {
                std::fprintf(stderr, "%s\n", err.what());
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--verify-scheme")) {
            try {
                cfg.model.verifyScheme = core::parseVerifyScheme(
                    need_value("--verify-scheme"));
            } catch (const FatalError &err) {
                std::fprintf(stderr, "%s\n", err.what());
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--inval-scheme")) {
            try {
                cfg.model.invalScheme = core::parseInvalScheme(
                    need_value("--inval-scheme"));
            } catch (const FatalError &err) {
                std::fprintf(stderr, "%s\n", err.what());
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--select")) {
            try {
                cfg.model.selectPolicy = core::parseSelectPolicy(
                    need_value("--select"));
            } catch (const FatalError &err) {
                std::fprintf(stderr, "%s\n", err.what());
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--mem-resolution")) {
            const std::string r = need_value("--mem-resolution");
            if (r == "valid")
                cfg.model.memNeedsValidOps = true;
            else if (r == "spec")
                cfg.model.memNeedsValidOps = false;
            else {
                std::fprintf(stderr,
                             "--mem-resolution expects valid|spec, "
                             "got '%s'\n",
                             r.c_str());
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--sweep-kind")) {
            const std::string k = need_value("--sweep-kind");
            if (k == "sparse")
                cfg.sweepKind = core::SweepKind::Sparse;
            else if (k == "dense")
                cfg.sweepKind = core::SweepKind::Dense;
            else {
                std::fprintf(stderr,
                             "--sweep-kind expects dense|sparse, "
                             "got '%s'\n",
                             k.c_str());
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--conf-table-bits")) {
            const int bits = parsePositiveInt(
                argv[0], "--conf-table-bits",
                need_value("--conf-table-bits"));
            if (bits > 24) {
                std::fprintf(stderr,
                             "--conf-table-bits expects 1..24, got %d\n",
                             bits);
                return 2;
            }
            cfg.confidenceTableBits = bits;
        } else if (!std::strcmp(argv[i], "--conf")) {
            const std::string c = need_value("--conf");
            if (c == "real")
                cfg.confidence = core::ConfidenceKind::Real;
            else if (c == "oracle")
                cfg.confidence = core::ConfidenceKind::Oracle;
            else if (c == "always")
                cfg.confidence = core::ConfidenceKind::Always;
            else {
                std::fprintf(stderr, "bad --conf %s\n", c.c_str());
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--timing")) {
            const std::string t = need_value("--timing");
            if (t == "D")
                cfg.updateTiming = core::UpdateTiming::Delayed;
            else if (t == "I")
                cfg.updateTiming = core::UpdateTiming::Immediate;
            else {
                std::fprintf(stderr, "bad --timing %s\n", t.c_str());
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--predictor")) {
            cfg.valuePredictor = need_value("--predictor");
        } else if (!std::strcmp(argv[i], "--pipeline")) {
            pipeline = true;
            // Optional A:B cycle-window operand.
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
                const char *w = argv[++i];
                char *end = nullptr;
                errno = 0;
                const unsigned long long a = std::strtoull(w, &end, 10);
                if (errno == ERANGE || end == w || *end != ':') {
                    std::fprintf(
                        stderr,
                        "--pipeline window must be A:B, got '%s'\n", w);
                    return 2;
                }
                const char *btext = end + 1;
                errno = 0;
                const unsigned long long b =
                    std::strtoull(btext, &end, 10);
                if (errno == ERANGE || end == btext || *end != '\0'
                    || b < a) {
                    std::fprintf(
                        stderr,
                        "--pipeline window must be A:B, got '%s'\n", w);
                    return 2;
                }
                pipeline_from = a;
                pipeline_to = b;
            }
        } else if (!std::strcmp(argv[i], "--trace-retain")) {
            cfg.traceRetain = static_cast<std::size_t>(
                parsePositiveInt(argv[0], "--trace-retain",
                                 need_value("--trace-retain")));
        } else if (!std::strcmp(argv[i], "--trace-json")) {
            trace_json_path = need_value("--trace-json");
        } else if (!std::strcmp(argv[i], "--metrics-interval")) {
            cfg.metricsInterval = static_cast<std::uint64_t>(
                parsePositiveInt(argv[0], "--metrics-interval",
                                 need_value("--metrics-interval")));
        } else if (!std::strcmp(argv[i], "--metrics")) {
            metrics_path = need_value("--metrics");
        } else if (!std::strcmp(argv[i], "--counters")) {
            counters = true;
            // Optional output path operand.
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
                counters_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--stacks")) {
            stacks = true;
            // Optional output path operand.
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
                stacks_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--ledger")) {
            ledger_path = need_value("--ledger");
        } else if (!std::strcmp(argv[i], "--ledger-limit")) {
            ledger_limit = static_cast<std::size_t>(
                parsePositiveInt(argv[0], "--ledger-limit",
                                 need_value("--ledger-limit")));
            ledger_limit_set = true;
        } else if (!std::strcmp(argv[i], "--shards")) {
            cfg.shards = parsePositiveU64(argv[0], "--shards",
                                          need_value("--shards"));
        } else if (!std::strcmp(argv[i], "--interval-insts")) {
            cfg.intervalInsts =
                parsePositiveU64(argv[0], "--interval-insts",
                                 need_value("--interval-insts"));
        } else if (!std::strcmp(argv[i], "--warmup-insts")) {
            const char *w = need_value("--warmup-insts");
            cfg.warmupInsts =
                !std::strcmp(w, "full")
                    ? UINT64_MAX
                    : parsePositiveU64(argv[0], "--warmup-insts", w);
            warmup_set = true;
        } else if (!std::strcmp(argv[i], "--sample")) {
            cfg.sampleK = parsePositiveU64(argv[0], "--sample",
                                           need_value("--sample"));
        } else if (!std::strcmp(argv[i], "--sample-interval-insts")) {
            cfg.sampleIntervalInsts = parsePositiveU64(
                argv[0], "--sample-interval-insts",
                need_value("--sample-interval-insts"));
        } else if (!std::strcmp(argv[i], "--jobs")) {
            cfg.shardJobs = parsePositiveInt(argv[0], "--jobs",
                                             need_value("--jobs"));
            jobs_set = true;
        } else if (!std::strcmp(argv[i], "--progress")) {
            progress = true;
        } else if (!std::strcmp(argv[i], "--cache-dir")) {
            cache_dir = need_value("--cache-dir");
        } else if (!std::strcmp(argv[i], "--cache-max-bytes")) {
            cache_max_bytes = parsePositiveU64(
                argv[0], "--cache-max-bytes",
                need_value("--cache-max-bytes"));
        } else if (!std::strcmp(argv[i], "--json")) {
            json = true;
            // Optional output path operand.
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
                json_path = argv[++i];
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    const int sources = (workload.empty() ? 0 : 1)
                        + (asm_file.empty() ? 0 : 1)
                        + (trace_file.empty() ? 0 : 1);
    if (sources != 1) {
        usage(argv[0]);
        return 2;
    }
    if (!metrics_path.empty() && cfg.metricsInterval == 0) {
        std::fprintf(stderr,
                     "--metrics needs --metrics-interval N\n");
        return 2;
    }
    if (ledger_limit_set && ledger_path.empty()) {
        std::fprintf(stderr, "--ledger-limit needs --ledger PATH\n");
        return 2;
    }
    if (cfg.shards > 0 && cfg.intervalInsts > 0) {
        std::fprintf(stderr, "--shards and --interval-insts are "
                             "mutually exclusive\n");
        return 2;
    }
    if (cfg.sampleK > 0 && (cfg.shards > 0 || cfg.intervalInsts > 0)) {
        std::fprintf(stderr, "--sample and --shards/--interval-insts "
                             "are mutually exclusive\n");
        return 2;
    }
    if (cfg.sampleIntervalInsts > 0 && cfg.sampleK == 0) {
        std::fprintf(stderr,
                     "--sample-interval-insts needs --sample\n");
        return 2;
    }
    const bool sharded = cfg.shards > 0 || cfg.intervalInsts > 0
                         || cfg.sampleK > 0;
    if ((warmup_set || jobs_set) && !sharded) {
        std::fprintf(stderr, "--warmup-insts/--jobs need --shards, "
                             "--interval-insts or --sample\n");
        return 2;
    }
    if (sharded && !asm_file.empty()) {
        std::fprintf(stderr, "sharded/sampled runs support --workload "
                             "and --trace only, not --asm\n");
        return 2;
    }
    const bool trace_json = !trace_json_path.empty();
    cfg.tracePipeline = pipeline || trace_json;
    if (sharded && cfg.tracePipeline) {
        std::fprintf(stderr, "pipeline tracing needs a single "
                             "monolithic core; drop --shards/"
                             "--interval-insts/--sample\n");
        return 2;
    }
    // Detailed per-prediction records are collected only on request —
    // the flag is part of the run's cache identity.
    cfg.specLedger = !ledger_path.empty();
    if (cache_dir.empty()) {
        const char *env = std::getenv("VSIM_CACHE_DIR");
        if (env && *env)
            cache_dir = env;
    }
    if (cache_max_bytes == 0) {
        const char *env = std::getenv("VSIM_CACHE_MAX_BYTES");
        if (env && *env)
            cache_max_bytes = parsePositiveU64(
                argv[0], "VSIM_CACHE_MAX_BYTES", env);
    }
    if (cache_max_bytes > 0 && cache_dir.empty()) {
        std::fprintf(stderr, "--cache-max-bytes needs --cache-dir "
                             "(or VSIM_CACHE_DIR)\n");
        return 2;
    }

    try {
        if (!cache_dir.empty() && asm_file.empty()
            && !cfg.tracePipeline) {
            auto disk = std::make_shared<sim::DiskRunCache>(cache_dir);
            disk->setMaxBytes(cache_max_bytes);
            sim::RunCache::process().attachDisk(std::move(disk));
        }
        sim::RunResult r;
        std::string pipeline_text;
        obs::TraceWriter trace_writer;

        if (asm_file.empty() && !cfg.tracePipeline) {
            // Workload and trace-replay runs go through the sweep
            // engine's run cache, driven by a single-job SweepRunner
            // so --progress shares the sweep machinery (results are
            // identical either way).
            sim::SweepJob job;
            job.label = sim::configLabel(cfg);
            job.workload = trace_file.empty()
                               ? workload
                               : sim::traceWorkloadName(trace_file);
            job.scale = scale;
            job.cfg = cfg;
            sim::SweepRunner runner(1, &sim::RunCache::process());
            runner.setProgress(progress);
            r = runner.run({job}).front();
        } else {
            std::unique_ptr<core::OooCore> core;
            if (!trace_file.empty()) {
                trace::LoadedTrace loaded =
                    trace::loadTrace(trace_file);
                core = std::make_unique<core::OooCore>(
                    loaded.program, std::move(loaded.trace), cfg);
                r.workload = sim::traceWorkloadName(trace_file);
            } else {
                assembler::Program prog;
                if (!workload.empty()) {
                    prog = workloads::buildProgram(
                        workloads::byName(workload), scale);
                } else {
                    std::ifstream in(asm_file);
                    if (!in) {
                        std::fprintf(stderr, "cannot open %s\n",
                                     asm_file.c_str());
                        return 1;
                    }
                    std::ostringstream ss;
                    ss << in.rdbuf();
                    prog = assembler::assemble(ss.str(), asm_file);
                }
                core = std::make_unique<core::OooCore>(prog, cfg);
                r.workload = workload.empty() ? asm_file : workload;
            }
            const core::SimOutcome out = core->run();
            r.stats = out.stats;
            r.instructions = out.stats.retired;
            r.ipc = out.stats.ipc();
            r.exitCode = out.exitCode;
            r.output = out.output;
            r.intervals = out.intervals;
            r.ledger = out.ledger;
            if (pipeline) {
                pipeline_text =
                    core->tracer().render(pipeline_from, pipeline_to);
            }
            if (trace_json)
                core->tracer().exportTo(trace_writer);
            if (progress)
                logLine("[1/1] " + sim::configLabel(cfg) + " ("
                        + r.workload + ")");
        }
        const core::CoreStats &s = r.stats;

        if (!metrics_path.empty()) {
            std::ostringstream csv;
            csv << obs::IntervalSeries::csvHeader("");
            r.intervals.appendCsv(csv, "");
            sim::writeFile(metrics_path, csv.str());
        }
        if (!counters_path.empty())
            sim::writeFile(counters_path, sim::countersJson(r) + "\n");
        if (!stacks_path.empty())
            sim::writeFile(stacks_path, sim::stacksJson(r) + "\n");
        if (!ledger_path.empty()) {
            sim::writeFile(ledger_path,
                           sim::ledgerJson(r, ledger_limit) + "\n");
        }
        if (trace_json) {
            // Overlay the interval IPC and the per-interval CPI stack
            // as Perfetto counter tracks.
            for (const obs::IntervalSample &iv : r.intervals.samples) {
                trace_writer.counter(
                    "ipc", iv.cycleStart, 1,
                    {{"ipc", obs::TraceWriter::num(iv.ipc())}});
                obs::TraceWriter::Args cpi_args;
                for (std::size_t c = 0; c < obs::kCpiCatCount; ++c) {
                    cpi_args.emplace_back(
                        obs::cpiCatName(static_cast<obs::CpiCat>(c)),
                        obs::TraceWriter::num(iv.cpi.cycles[c]));
                }
                trace_writer.counter("cpi_stack", iv.cycleStart, 1,
                                     std::move(cpi_args));
            }
            sim::writeFile(trace_json_path,
                           trace_writer.toJson() + "\n");
        }

        if (json) {
            const std::string js = sim::toJson(r) + "\n";
            if (json_path.empty())
                std::printf("%s", js.c_str());
            else
                sim::writeFile(json_path, js);
            return 0;
        }

        if (!r.output.empty())
            std::printf("program output: %s\n", r.output.c_str());
        std::printf("exit code      : %llu\n",
                    static_cast<unsigned long long>(r.exitCode));
        std::printf("cycles         : %llu\n",
                    static_cast<unsigned long long>(s.cycles));
        std::printf("instructions   : %llu (IPC %.3f)\n",
                    static_cast<unsigned long long>(s.retired),
                    s.ipc());
        std::printf("loads/stores   : %llu / %llu (%llu forwarded)\n",
                    static_cast<unsigned long long>(s.retiredLoads),
                    static_cast<unsigned long long>(s.retiredStores),
                    static_cast<unsigned long long>(s.loadsForwarded));
        std::printf("cond branches  : %llu (%.2f%% mispredicted)\n",
                    static_cast<unsigned long long>(s.condBranches),
                    s.condBranches
                        ? 100.0
                              * static_cast<double>(s.condMispredicts)
                              / static_cast<double>(s.condBranches)
                        : 0.0);
        std::printf("cache misses   : %llu icache, %llu dcache\n",
                    static_cast<unsigned long long>(s.icacheMisses),
                    static_cast<unsigned long long>(s.dcacheMisses));
        if (cfg.useValuePrediction) {
            std::printf(
                "value pred     : %llu eligible, accuracy %.1f%% "
                "(CH %llu CL %llu IH %llu IL %llu)\n",
                static_cast<unsigned long long>(s.vpEligible),
                100.0 * s.predictionAccuracy(),
                static_cast<unsigned long long>(s.vpCH),
                static_cast<unsigned long long>(s.vpCL),
                static_cast<unsigned long long>(s.vpIH),
                static_cast<unsigned long long>(s.vpIL));
            std::printf(
                "speculation    : %llu verified, %llu invalidated, "
                "%llu nullified, %llu reissued\n",
                static_cast<unsigned long long>(s.verifyEvents),
                static_cast<unsigned long long>(s.invalidateEvents),
                static_cast<unsigned long long>(s.nullifications),
                static_cast<unsigned long long>(s.reissues));
        }
        if (stacks && stacks_path.empty())
            std::printf("\n%s", sim::stacksText(r).c_str());
        if (counters && counters_path.empty())
            std::printf("\n%s", sim::countersText(r).c_str());
        if (pipeline)
            std::printf("\n%s", pipeline_text.c_str());
        return 0;
    } catch (const FatalError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
}
