/**
 * @file
 * vspec-asm: assembler front end. Assembles a VRISC .s file and
 * either lists the encoded instructions (with disassembly) or runs it
 * on the functional reference core.
 *
 *   vspec-asm prog.s --list          # addresses, words, disassembly
 *   vspec-asm prog.s --run           # functional execution
 *   vspec-asm prog.s --run --max 1000000
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "vsim/arch/functional_core.hh"
#include "vsim/assembler/assembler.hh"
#include "vsim/base/logging.hh"
#include "vsim/isa/isa.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;

    std::string file;
    bool list = false, run = false;
    std::uint64_t max_insts = 100'000'000;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--list")) {
            list = true;
        } else if (!std::strcmp(argv[i], "--run")) {
            run = true;
        } else if (!std::strcmp(argv[i], "--max") && i + 1 < argc) {
            max_insts = std::strtoull(argv[++i], nullptr, 10);
        } else if (argv[i][0] != '-' && file.empty()) {
            file = argv[i];
        } else {
            std::fprintf(stderr,
                         "usage: %s FILE.s [--list] [--run] "
                         "[--max N]\n",
                         argv[0]);
            return 2;
        }
    }
    if (file.empty() || (!list && !run)) {
        std::fprintf(stderr,
                     "usage: %s FILE.s [--list] [--run] [--max N]\n",
                     argv[0]);
        return 2;
    }

    std::ifstream in(file);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", file.c_str());
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();

    try {
        const assembler::Program prog =
            assembler::assemble(ss.str(), file);
        std::printf("%zu instructions, %zu data bytes, entry 0x%llx\n",
                    prog.text.size(), prog.data.size(),
                    static_cast<unsigned long long>(prog.entry));

        if (list) {
            for (std::size_t i = 0; i < prog.text.size(); ++i) {
                const auto inst = isa::decode(prog.text[i]);
                std::printf("%08llx: %08x  %s\n",
                            static_cast<unsigned long long>(
                                prog.textBase + 4 * i),
                            prog.text[i],
                            inst ? isa::disassemble(*inst).c_str()
                                 : "<illegal>");
            }
        }
        if (run) {
            arch::FunctionalCore core(prog);
            const std::uint64_t n = core.run(max_insts);
            if (!core.state().output.empty())
                std::printf("output: %s\n",
                            core.state().output.c_str());
            std::printf("halted after %llu instructions, exit code "
                        "%llu\n",
                        static_cast<unsigned long long>(n),
                        static_cast<unsigned long long>(
                            core.state().exitCode));
        }
        return 0;
    } catch (const FatalError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
}
