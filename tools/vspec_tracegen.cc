/**
 * @file
 * vspec-tracegen: record dynamic instruction traces (.vst files) from
 * the functional core, for decode-free replay through the timing
 * simulator (vspec-run --trace / vspec-sweep --trace). Every built-in
 * kernel round-trips: replaying its trace is digest-identical to
 * simulating it directly.
 *
 *   vspec-tracegen --workload queens -o queens.vst
 *   vspec-tracegen --asm prog.s --out prog.vst
 *   vspec-tracegen --all --out-dir traces/
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "vsim/assembler/assembler.hh"
#include "vsim/base/logging.hh"
#include "vsim/trace/trace_io.hh"
#include "vsim/workloads/workloads.hh"

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s (--workload NAME | --asm FILE) [--scale N] -o FILE\n"
        "       %s --all [--scale N] --out-dir DIR\n"
        "  --workload NAME   one of:",
        argv0, argv0);
    for (const auto &w : vsim::workloads::all())
        std::fprintf(stderr, " %s", w.name.c_str());
    std::fprintf(
        stderr,
        "\n"
        "  --asm FILE        assemble and trace a VRISC .s file\n"
        "  --all             trace every built-in workload into "
        "--out-dir\n"
        "  --scale N         workload work factor (default: built-in)\n"
        "  -o, --out FILE    output trace path\n"
        "  --out-dir DIR     output directory for --all "
        "(files are <name>.vst)\n");
}

int
parsePositiveInt(const char *argv0, const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || v <= 0
        || v > std::numeric_limits<int>::max()) {
        std::fprintf(stderr, "%s expects a positive integer, got '%s'\n",
                     flag, text);
        usage(argv0);
        std::exit(2);
    }
    return static_cast<int>(v);
}

/** Record @p prog to @p path and re-validate the file end to end. */
void
generate(const vsim::assembler::Program &prog, const std::string &path,
         const std::string &name)
{
    const std::uint64_t n = vsim::trace::recordTrace(prog, path);
    // Re-reading applies the reader's full validation (structure,
    // digest, record sanity), so a bad recording is caught here, not
    // at replay time.
    vsim::trace::TraceReader reader(path);
    VSIM_ASSERT(reader.recordCount() == n,
                "trace re-read record count mismatch");
    std::printf("wrote %s: %llu records, %u text words, "
                "%u data bytes (%s)\n",
                path.c_str(), static_cast<unsigned long long>(n),
                reader.header().textWords, reader.header().dataBytes,
                name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vsim;

    std::string workload, asm_file, out_path, out_dir;
    int scale = -1;
    bool all = false;

    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--workload")) {
            workload = need_value("--workload");
        } else if (!std::strcmp(argv[i], "--asm")) {
            asm_file = need_value("--asm");
        } else if (!std::strcmp(argv[i], "--all")) {
            all = true;
        } else if (!std::strcmp(argv[i], "--scale")) {
            scale = parsePositiveInt(argv[0], "--scale",
                                     need_value("--scale"));
        } else if (!std::strcmp(argv[i], "-o")
                   || !std::strcmp(argv[i], "--out")) {
            out_path = need_value("--out");
        } else if (!std::strcmp(argv[i], "--out-dir")) {
            out_dir = need_value("--out-dir");
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    const int sources = (workload.empty() ? 0 : 1)
                        + (asm_file.empty() ? 0 : 1) + (all ? 1 : 0);
    if (sources != 1 || (all ? (out_dir.empty() || !out_path.empty())
                             : (out_path.empty() || !out_dir.empty()))) {
        usage(argv[0]);
        return 2;
    }

    try {
        if (all) {
            for (const auto &w : workloads::all()) {
                generate(workloads::buildProgram(w, scale),
                         out_dir + "/" + w.name + ".vst", w.name);
            }
        } else if (!workload.empty()) {
            generate(workloads::buildProgram(workloads::byName(workload),
                                             scale),
                     out_path, workload);
        } else {
            std::ifstream in(asm_file);
            if (!in) {
                std::fprintf(stderr, "cannot open %s\n",
                             asm_file.c_str());
                return 1;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            generate(assembler::assemble(ss.str(), asm_file), out_path,
                     asm_file);
        }
        return 0;
    } catch (const FatalError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
}
