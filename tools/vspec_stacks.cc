/**
 * @file
 * vspec-stacks: compare the CPI stacks of two result files. Accepts
 * any JSON this repo's drivers emit with cpi_* fields — a vspec-run
 * --json object, a vspec-run --stacks object, a vspec-sweep --json
 * array or a vspec-sweep --stacks array — and prints a per-category
 * cycle diff for every cell present in both files, so a verify-scheme
 * (or any other) ablation reads as "where did the cycles move", not
 * just "cycles changed".
 *
 *   vspec-stacks base.json hier.json
 *
 * The parser is a deliberately small scanner over the flat objects
 * the report writers produce (no JSON library in the repo); anything
 * it cannot read exits 1 with a diagnostic.
 */

#include <array>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "vsim/obs/cpi.hh"

namespace
{

using vsim::obs::CpiCat;
using vsim::obs::cpiCatName;
using vsim::obs::kCpiCatCount;

/** One result cell: identity plus its CPI stack. */
struct StackRow
{
    std::string label;
    std::string workload;
    std::string config;
    std::uint64_t cycles = 0;
    std::array<std::uint64_t, kCpiCatCount> cpi{};

    std::string
    key() const
    {
        return label + "\x1f" + workload + "\x1f" + config;
    }

    std::string
    title() const
    {
        std::string t = label.empty() ? workload
                                      : label + " (" + workload + ")";
        if (!config.empty())
            t += " [" + config + "]";
        return t;
    }
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s A.json B.json\n"
                 "  A/B: vspec-run --json/--stacks or vspec-sweep "
                 "--json/--stacks output\n",
                 argv0);
}

/**
 * Split a JSON document into the texts of its top-level objects: the
 * whole body for "{...}", each depth-1 object for "[{...}, ...]".
 * String-literal aware so braces inside values cannot desync it.
 */
bool
splitObjects(const std::string &text, std::vector<std::string> &out)
{
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    std::size_t start = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{') {
            if (++depth == 1)
                start = i;
        } else if (c == '}') {
            if (depth == 0)
                return false;
            if (--depth == 0)
                out.push_back(text.substr(start, i - start + 1));
        }
    }
    return depth == 0 && !in_string && !out.empty();
}

/** Find `"name": <value>` in @p obj; value text (raw) or empty. */
std::string
findValue(const std::string &obj, const std::string &name)
{
    const std::string needle = "\"" + name + "\":";
    const std::size_t at = obj.find(needle);
    if (at == std::string::npos)
        return "";
    std::size_t i = at + needle.size();
    while (i < obj.size() && std::isspace(static_cast<unsigned char>(
                                 obj[i])))
        ++i;
    if (i >= obj.size())
        return "";
    if (obj[i] == '"') {
        // String value: scan to the closing unescaped quote.
        std::string v;
        for (std::size_t j = i + 1; j < obj.size(); ++j) {
            if (obj[j] == '\\' && j + 1 < obj.size()) {
                v += obj[++j];
            } else if (obj[j] == '"') {
                return v;
            } else {
                v += obj[j];
            }
        }
        return "";
    }
    std::string v;
    while (i < obj.size()
           && (std::isalnum(static_cast<unsigned char>(obj[i]))
               || obj[i] == '.' || obj[i] == '-' || obj[i] == '+'))
        v += obj[i++];
    return v;
}

bool
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return end && *end == '\0';
}

/** Parse every cell carrying a CPI stack out of one result file. */
bool
loadStacks(const char *path, std::vector<StackRow> &rows)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", path);
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::vector<std::string> objects;
    if (!splitObjects(ss.str(), objects)) {
        std::fprintf(stderr, "error: %s: not a JSON object/array\n",
                     path);
        return false;
    }
    for (const std::string &obj : objects) {
        StackRow row;
        row.label = findValue(obj, "label");
        row.workload = findValue(obj, "workload");
        row.config = findValue(obj, "config");
        bool complete = parseU64(findValue(obj, "cycles"), row.cycles);
        for (std::size_t c = 0; complete && c < kCpiCatCount; ++c) {
            const std::string name =
                std::string("cpi_")
                + cpiCatName(static_cast<CpiCat>(c));
            complete = parseU64(findValue(obj, name), row.cpi[c]);
        }
        if (complete)
            rows.push_back(std::move(row));
    }
    if (rows.empty()) {
        std::fprintf(stderr,
                     "error: %s: no objects with cycles and cpi_* "
                     "fields\n",
                     path);
        return false;
    }
    return true;
}

void
diffOne(const StackRow &a, const StackRow &b)
{
    std::printf("== %s ==\n", a.title().c_str());
    std::printf("  %-16s %14s %14s %14s %9s\n", "category", "A cycles",
                "B cycles", "delta", "delta%");
    for (std::size_t c = 0; c < kCpiCatCount; ++c) {
        const std::int64_t delta =
            static_cast<std::int64_t>(b.cpi[c])
            - static_cast<std::int64_t>(a.cpi[c]);
        const double pct =
            a.cycles == 0 ? 0.0
                          : 100.0 * static_cast<double>(delta)
                                / static_cast<double>(a.cycles);
        std::printf("  %-16s %14llu %14llu %+14lld %+8.2f%%\n",
                    cpiCatName(static_cast<CpiCat>(c)),
                    static_cast<unsigned long long>(a.cpi[c]),
                    static_cast<unsigned long long>(b.cpi[c]),
                    static_cast<long long>(delta), pct);
    }
    const std::int64_t tdelta = static_cast<std::int64_t>(b.cycles)
                                - static_cast<std::int64_t>(a.cycles);
    std::printf("  %-16s %14llu %14llu %+14lld\n", "total",
                static_cast<unsigned long long>(a.cycles),
                static_cast<unsigned long long>(b.cycles),
                static_cast<long long>(tdelta));
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        usage(argv[0]);
        return 2;
    }
    std::vector<StackRow> as, bs;
    if (!loadStacks(argv[1], as) || !loadStacks(argv[2], bs))
        return 1;

    // Single-cell files diff directly (labels may legitimately
    // differ: "base" vs "great D/R"); multi-cell files pair up by
    // identity so reordered sweeps still align.
    std::size_t matched = 0;
    std::vector<const StackRow *> only_a, only_b;
    if (as.size() == 1 && bs.size() == 1) {
        diffOne(as[0], bs[0]);
        matched = 1;
    } else {
        for (const StackRow &a : as) {
            bool found = false;
            for (const StackRow &b : bs) {
                if (a.key() == b.key()) {
                    if (matched)
                        std::printf("\n");
                    diffOne(a, b);
                    ++matched;
                    found = true;
                    break;
                }
            }
            if (!found)
                only_a.push_back(&a);
        }
        for (const StackRow &b : bs) {
            bool found = false;
            for (const StackRow &a : as) {
                if (a.key() == b.key()) {
                    found = true;
                    break;
                }
            }
            if (!found)
                only_b.push_back(&b);
        }
    }
    if (matched == 0) {
        std::fprintf(stderr,
                     "error: no common cells between %s (%zu) and %s "
                     "(%zu)\n",
                     argv[1], as.size(), argv[2], bs.size());
        return 1;
    }
    // A partial match means the two files describe different sweeps;
    // diffing only the intersection would silently hide cells, so
    // name every unmatched cell and fail.
    if (!only_a.empty() || !only_b.empty()) {
        std::fprintf(stderr,
                     "error: cell sets differ (%zu compared, %zu only "
                     "in %s, %zu only in %s)\n",
                     matched, only_a.size(), argv[1], only_b.size(),
                     argv[2]);
        for (const StackRow *row : only_a)
            std::fprintf(stderr, "  only in %s: %s\n", argv[1],
                         row->title().c_str());
        for (const StackRow *row : only_b)
            std::fprintf(stderr, "  only in %s: %s\n", argv[2],
                         row->title().c_str());
        return 1;
    }
    return 0;
}
