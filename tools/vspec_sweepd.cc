/**
 * @file
 * vspec-sweepd: the sweep engine as a long-running service. Listens
 * on a Unix-domain socket for batched sweep requests (see
 * vsim/sim/server.hh for the wire protocol), simulates cells on a
 * shared worker pool, and memoizes every result in the process-wide
 * RunCache — optionally persisted to disk with --cache-dir, so a
 * restarted daemon serves previously computed cells without
 * simulating. Concurrent clients deduplicate in flight: two clients
 * requesting the same cell trigger one simulation.
 *
 *   vspec-sweepd --socket /tmp/vspec.sock --cache-dir ~/.vspec-cache
 *   vspec-sweep fig3 --quick --server /tmp/vspec.sock
 */

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "vsim/base/logging.hh"
#include "vsim/sim/disk_cache.hh"
#include "vsim/sim/server.hh"
#include "vsim/sim/sweep.hh"

namespace
{

vsim::sim::SweepServer *g_server = nullptr;

void
handleSignal(int)
{
    if (g_server)
        g_server->stop();
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [--cache-dir PATH]\n"
        "       [--cache-max-bytes N] [--workers N]\n"
        "  --socket PATH     Unix-domain socket to listen on "
        "(required)\n"
        "  --cache-dir PATH  persist finished runs to disk; a "
        "restarted daemon\n"
        "                    serves them without re-simulating (also "
        "via\n"
        "                    VSIM_CACHE_DIR)\n"
        "  --cache-max-bytes N\n"
        "                    cap the cache directory at N bytes,\n"
        "                    evicting least-recently-used entries on\n"
        "                    insert (also via VSIM_CACHE_MAX_BYTES;\n"
        "                    needs --cache-dir)\n"
        "  --workers N       simulation worker threads (default: one "
        "per\n"
        "                    hardware thread)\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vsim;

    std::string socket_path, cache_dir;
    std::uint64_t cache_max_bytes = 0;
    int workers = 0;

    const auto parse_max_bytes = [&](const char *what,
                                     const char *text) {
        errno = 0;
        char *end = nullptr;
        const unsigned long long v = std::strtoull(text, &end, 10);
        if (text[0] == '-' || text[0] == '+' || end == text
            || *end != '\0' || errno == ERANGE || v == 0) {
            std::fprintf(stderr,
                         "%s expects a positive byte count, got '%s'\n",
                         what, text);
            std::exit(2);
        }
        return static_cast<std::uint64_t>(v);
    };

    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--socket")) {
            socket_path = need_value("--socket");
        } else if (!std::strcmp(argv[i], "--cache-dir")) {
            cache_dir = need_value("--cache-dir");
        } else if (!std::strcmp(argv[i], "--cache-max-bytes")) {
            cache_max_bytes =
                parse_max_bytes("--cache-max-bytes",
                                need_value("--cache-max-bytes"));
        } else if (!std::strcmp(argv[i], "--workers")) {
            const char *w = need_value("--workers");
            workers = std::atoi(w);
            if (workers <= 0) {
                std::fprintf(stderr,
                             "--workers expects a positive integer, "
                             "got '%s'\n",
                             w);
                return 2;
            }
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (socket_path.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (cache_dir.empty()) {
        const char *env = std::getenv("VSIM_CACHE_DIR");
        if (env && *env)
            cache_dir = env;
    }
    if (cache_max_bytes == 0) {
        const char *env = std::getenv("VSIM_CACHE_MAX_BYTES");
        if (env && *env)
            cache_max_bytes =
                parse_max_bytes("VSIM_CACHE_MAX_BYTES", env);
    }
    if (cache_max_bytes > 0 && cache_dir.empty()) {
        std::fprintf(stderr, "--cache-max-bytes needs --cache-dir "
                             "(or VSIM_CACHE_DIR)\n");
        return 2;
    }

    try {
        if (!cache_dir.empty()) {
            auto disk = std::make_shared<sim::DiskRunCache>(cache_dir);
            disk->setMaxBytes(cache_max_bytes);
            sim::RunCache::process().attachDisk(std::move(disk));
            VSIM_INFORM("sweepd: persistent cache at ", cache_dir,
                        cache_max_bytes
                            ? " (budget " +
                                  std::to_string(cache_max_bytes) +
                                  " bytes)"
                            : "");
        }
        sim::SweepServer server(socket_path, workers);
        g_server = &server;
        std::signal(SIGINT, handleSignal);
        std::signal(SIGTERM, handleSignal);
        VSIM_INFORM("sweepd: listening on ", socket_path);
        server.serve();
        VSIM_INFORM("sweepd: shutting down after serving ",
                    server.cellsServed(), " cell(s)");
        g_server = nullptr;
        return 0;
    } catch (const FatalError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
}
