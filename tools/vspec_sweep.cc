/**
 * @file
 * vspec-sweep: run an arbitrary named sweep from the command line on
 * the parallel sweep engine, and emit the results as a text table
 * and/or machine-readable JSON/CSV. The named sweeps are the job
 * lists behind the bench figures and ablations (see
 * vsim/sim/sweep.cc); this tool makes them scriptable without
 * recompiling a bench binary.
 *
 *   vspec-sweep --list
 *   vspec-sweep fig3 --quick --jobs 8
 *   vspec-sweep confidence --json conf.json --csv conf.csv
 */

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "vsim/base/logging.hh"
#include "vsim/base/stats.hh"
#include "vsim/core/spec_model.hh"
#include "vsim/core/window_types.hh"
#include "vsim/sim/disk_cache.hh"
#include "vsim/sim/report.hh"
#include "vsim/sim/server.hh"
#include "vsim/sim/sweep.hh"

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s NAME [--quick] [--scale N] [--jobs N] "
                 "[--json PATH] [--csv PATH]\n"
                 "       %*s [--metrics-interval N] [--metrics PATH] "
                 "[--trace-json PATH] [--progress]\n"
                 "       %s --list\n"
                 "  --metrics-interval N  sample interval metrics every "
                 "N cycles\n"
                 "  --metrics PATH        write the per-run interval "
                 "series as CSV\n"
                 "  --stacks PATH         write every cell's CPI stack "
                 "as JSON\n"
                 "  --ledger PATH         write every cell's speculation "
                 "ledger as JSON\n"
                 "                        (per-prediction lifecycle "
                 "records)\n"
                 "  --ledger-limit N      emit at most N ledger records "
                 "per cell\n"
                 "  --trace-json PATH     write the sweep execution "
                 "timeline as Chrome/Perfetto JSON\n"
                 "  --progress            print one stderr line per "
                 "finished run\n"
                 "  --model M             override the latency model of "
                 "every speculative run:\n"
                 "                        super|great|good or a tuple "
                 "E,EI,EV,VF,IR,VB,VA\n"
                 "  --verify-scheme V     override verification: "
                 "flattened|hierarchical|retirement|hybrid\n"
                 "  --inval-scheme I      override invalidation: "
                 "flattened|hierarchical|complete\n"
                 "  --select S            override selection: "
                 "typed-spec-last|typed-only|\n"
                 "                        oldest-first|typed-spec-first\n"
                 "  --mem-resolution R    override memory resolution of "
                 "every speculative run:\n"
                 "                        valid (addresses must be "
                 "valid) | spec (speculative\n"
                 "                        addresses + forwarding "
                 "allowed)\n"
                 "  --sweep-kind K        dense|sparse verification/"
                 "invalidation sweep domain\n"
                 "                        for every run (identical "
                 "results; default sparse)\n"
                 "  --trace FILE          replace the built-in workload "
                 "suite with a recorded\n"
                 "                        .vst trace (repeatable; see "
                 "vspec-tracegen)\n"
                 "  --window N            override the window size of "
                 "every run (max 512)\n"
                 "  --fetch-width N       override the fetch width of "
                 "every run\n"
                 "  --shards N            split every run into N "
                 "interval shards, simulated\n"
                 "                        independently and merged "
                 "(see --warmup-insts)\n"
                 "  --interval-insts K    shard every K retired "
                 "instructions instead of a\n"
                 "                        fixed shard count\n"
                 "  --warmup-insts W      per-shard detailed-warmup "
                 "prefix in instructions, or\n"
                 "                        'full' (default): exact "
                 "replay, bit-identical results\n"
                 "                        (with --sample, 'full' means "
                 "one interval of warmup)\n"
                 "  --sample N            SimPoint-style sampled "
                 "replay of every run: cluster\n"
                 "                        intervals into at most N "
                 "phases by basic-block\n"
                 "                        vector, simulate one "
                 "representative per phase and\n"
                 "                        weight it by phase "
                 "population (approximate;\n"
                 "                        excludes --shards/"
                 "--interval-insts)\n"
                 "  --sample-interval-insts K\n"
                 "                        sampling interval length in "
                 "instructions\n"
                 "                        (default 1000000)\n"
                 "  --shard-jobs N        worker threads per run for "
                 "shard or representative\n"
                 "                        execution (default 1; --jobs "
                 "stays the sweep-level\n"
                 "                        worker count)\n"
                 "  --cache-dir PATH      persistent on-disk run cache: "
                 "repeated sweeps serve\n"
                 "                        finished cells from disk "
                 "instead of re-simulating\n"
                 "                        (also via VSIM_CACHE_DIR; "
                 "invalidated on rebuild)\n"
                 "  --cache-max-bytes N   cap the cache directory at N "
                 "bytes, evicting\n"
                 "                        least-recently-used entries "
                 "on insert (also via\n"
                 "                        VSIM_CACHE_MAX_BYTES; needs a "
                 "cache directory)\n"
                 "  --server SOCK         run the sweep through a "
                 "vspec-sweepd daemon at the\n"
                 "                        given Unix socket instead of "
                 "simulating locally\n"
                 "named sweeps:\n",
                 argv0, static_cast<int>(std::strlen(argv0) + 7), "",
                 argv0);
    for (const auto &s : vsim::sim::namedSweeps())
        std::fprintf(stderr, "  %-16s %s\n", s.name.c_str(),
                     s.description.c_str());
}

int
parsePositiveInt(const char *argv0, const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || v <= 0
        || v > std::numeric_limits<int>::max()) {
        std::fprintf(stderr, "%s expects a positive integer, got '%s'\n",
                     flag, text);
        usage(argv0);
        std::exit(2);
    }
    return static_cast<int>(v);
}

/**
 * Full-token positive 64-bit count; exits with usage on anything else
 * (including negative numbers, which strtoull would silently wrap).
 */
std::uint64_t
parsePositiveU64(const char *argv0, const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (text[0] == '-' || text[0] == '+' || end == text || *end != '\0'
        || errno == ERANGE || v == 0) {
        std::fprintf(stderr, "%s expects a positive count, got '%s'\n",
                     flag, text);
        usage(argv0);
        std::exit(2);
    }
    return static_cast<std::uint64_t>(v);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vsim;

    std::string name, json_path, csv_path;
    std::string metrics_path, trace_json_path;
    std::string stacks_path, ledger_path;
    std::size_t ledger_limit = 0;
    bool ledger_limit_set = false;
    std::uint64_t metrics_interval = 0;
    bool progress = false;
    sim::SweepOptions opt;
    int jobs = sim::SweepRunner::defaultJobs();
    std::optional<core::SpecModel> model_override;
    std::optional<core::VerifyScheme> verify_override;
    std::optional<core::InvalScheme> inval_override;
    std::optional<core::SelectPolicy> select_override;
    std::optional<bool> mem_valid_override;
    std::optional<core::SweepKind> sweep_kind_override;
    std::optional<int> window_override;
    std::optional<int> fetch_width_override;
    std::uint64_t shards = 0;
    std::uint64_t interval_insts = 0;
    std::uint64_t warmup_insts = UINT64_MAX;
    std::uint64_t sample_k = 0;
    std::uint64_t sample_interval_insts = 0;
    int shard_jobs = 1;
    bool warmup_set = false;
    bool shard_jobs_set = false;
    std::string cache_dir, server_sock;
    std::uint64_t cache_max_bytes = 0;

    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--list")) {
            usage(argv[0]);
            return 0;
        } else if (!std::strcmp(argv[i], "--quick")) {
            opt.quick = true;
        } else if (!std::strcmp(argv[i], "--scale")) {
            opt.scale = parsePositiveInt(argv[0], "--scale",
                                         need_value("--scale"));
        } else if (!std::strcmp(argv[i], "--jobs")) {
            jobs = parsePositiveInt(argv[0], "--jobs",
                                    need_value("--jobs"));
        } else if (!std::strcmp(argv[i], "--json")) {
            json_path = need_value("--json");
        } else if (!std::strcmp(argv[i], "--csv")) {
            csv_path = need_value("--csv");
        } else if (!std::strcmp(argv[i], "--metrics-interval")) {
            metrics_interval = static_cast<std::uint64_t>(
                parsePositiveInt(argv[0], "--metrics-interval",
                                 need_value("--metrics-interval")));
        } else if (!std::strcmp(argv[i], "--metrics")) {
            metrics_path = need_value("--metrics");
        } else if (!std::strcmp(argv[i], "--stacks")) {
            stacks_path = need_value("--stacks");
        } else if (!std::strcmp(argv[i], "--ledger")) {
            ledger_path = need_value("--ledger");
        } else if (!std::strcmp(argv[i], "--ledger-limit")) {
            ledger_limit = static_cast<std::size_t>(
                parsePositiveInt(argv[0], "--ledger-limit",
                                 need_value("--ledger-limit")));
            ledger_limit_set = true;
        } else if (!std::strcmp(argv[i], "--trace-json")) {
            trace_json_path = need_value("--trace-json");
        } else if (!std::strcmp(argv[i], "--progress")) {
            progress = true;
        } else if (!std::strcmp(argv[i], "--model")) {
            try {
                model_override =
                    core::SpecModel::byName(need_value("--model"));
            } catch (const FatalError &err) {
                std::fprintf(stderr, "%s\n", err.what());
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--verify-scheme")) {
            try {
                verify_override = core::parseVerifyScheme(
                    need_value("--verify-scheme"));
            } catch (const FatalError &err) {
                std::fprintf(stderr, "%s\n", err.what());
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--inval-scheme")) {
            try {
                inval_override = core::parseInvalScheme(
                    need_value("--inval-scheme"));
            } catch (const FatalError &err) {
                std::fprintf(stderr, "%s\n", err.what());
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--select")) {
            try {
                select_override = core::parseSelectPolicy(
                    need_value("--select"));
            } catch (const FatalError &err) {
                std::fprintf(stderr, "%s\n", err.what());
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--mem-resolution")) {
            const std::string r = need_value("--mem-resolution");
            if (r == "valid")
                mem_valid_override = true;
            else if (r == "spec")
                mem_valid_override = false;
            else {
                std::fprintf(stderr,
                             "--mem-resolution expects valid|spec, "
                             "got '%s'\n",
                             r.c_str());
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--trace")) {
            opt.workloads.push_back(
                sim::traceWorkloadName(need_value("--trace")));
        } else if (!std::strcmp(argv[i], "--window")) {
            window_override = parsePositiveInt(argv[0], "--window",
                                               need_value("--window"));
            if (*window_override > core::kMaxWindow) {
                std::fprintf(stderr,
                             "--window %d exceeds the supported "
                             "maximum of %d\n",
                             *window_override, core::kMaxWindow);
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--fetch-width")) {
            fetch_width_override = parsePositiveInt(
                argv[0], "--fetch-width", need_value("--fetch-width"));
        } else if (!std::strcmp(argv[i], "--shards")) {
            shards = parsePositiveU64(argv[0], "--shards",
                                      need_value("--shards"));
        } else if (!std::strcmp(argv[i], "--interval-insts")) {
            interval_insts =
                parsePositiveU64(argv[0], "--interval-insts",
                                 need_value("--interval-insts"));
        } else if (!std::strcmp(argv[i], "--warmup-insts")) {
            const char *w = need_value("--warmup-insts");
            warmup_insts =
                !std::strcmp(w, "full")
                    ? UINT64_MAX
                    : parsePositiveU64(argv[0], "--warmup-insts", w);
            warmup_set = true;
        } else if (!std::strcmp(argv[i], "--sample")) {
            sample_k = parsePositiveU64(argv[0], "--sample",
                                        need_value("--sample"));
        } else if (!std::strcmp(argv[i], "--sample-interval-insts")) {
            sample_interval_insts = parsePositiveU64(
                argv[0], "--sample-interval-insts",
                need_value("--sample-interval-insts"));
        } else if (!std::strcmp(argv[i], "--shard-jobs")) {
            shard_jobs = parsePositiveInt(argv[0], "--shard-jobs",
                                          need_value("--shard-jobs"));
            shard_jobs_set = true;
        } else if (!std::strcmp(argv[i], "--cache-dir")) {
            cache_dir = need_value("--cache-dir");
        } else if (!std::strcmp(argv[i], "--cache-max-bytes")) {
            cache_max_bytes = parsePositiveU64(
                argv[0], "--cache-max-bytes",
                need_value("--cache-max-bytes"));
        } else if (!std::strcmp(argv[i], "--server")) {
            server_sock = need_value("--server");
        } else if (!std::strcmp(argv[i], "--sweep-kind")) {
            const std::string k = need_value("--sweep-kind");
            if (k == "sparse")
                sweep_kind_override = core::SweepKind::Sparse;
            else if (k == "dense")
                sweep_kind_override = core::SweepKind::Dense;
            else {
                std::fprintf(stderr,
                             "--sweep-kind expects dense|sparse, "
                             "got '%s'\n",
                             k.c_str());
                return 2;
            }
        } else if (argv[i][0] != '-' && name.empty()) {
            name = argv[i];
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (name.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (!metrics_path.empty() && metrics_interval == 0) {
        std::fprintf(stderr,
                     "--metrics needs --metrics-interval N\n");
        return 2;
    }
    if (ledger_limit_set && ledger_path.empty()) {
        std::fprintf(stderr, "--ledger-limit needs --ledger PATH\n");
        return 2;
    }
    if (shards > 0 && interval_insts > 0) {
        std::fprintf(stderr, "--shards and --interval-insts are "
                             "mutually exclusive\n");
        return 2;
    }
    if (sample_k > 0 && (shards > 0 || interval_insts > 0)) {
        std::fprintf(stderr, "--sample and --shards/--interval-insts "
                             "are mutually exclusive\n");
        return 2;
    }
    if (sample_interval_insts > 0 && sample_k == 0) {
        std::fprintf(stderr,
                     "--sample-interval-insts needs --sample\n");
        return 2;
    }
    if ((warmup_set || shard_jobs_set) && shards == 0
        && interval_insts == 0 && sample_k == 0) {
        std::fprintf(stderr, "--warmup-insts/--shard-jobs need "
                             "--shards, --interval-insts or --sample\n");
        return 2;
    }
    if (!cache_dir.empty() && !server_sock.empty()) {
        std::fprintf(stderr,
                     "--cache-dir and --server are mutually exclusive "
                     "(the daemon owns the cache)\n");
        return 2;
    }
    // The env fallback only applies to local runs: in server mode the
    // daemon owns the cache, and an ambient VSIM_CACHE_DIR must not
    // turn into an error the explicit flags would not produce.
    if (cache_dir.empty() && server_sock.empty()) {
        const char *env = std::getenv("VSIM_CACHE_DIR");
        if (env && *env)
            cache_dir = env;
    }
    if (cache_max_bytes == 0 && server_sock.empty()) {
        const char *env = std::getenv("VSIM_CACHE_MAX_BYTES");
        if (env && *env)
            cache_max_bytes = parsePositiveU64(
                argv[0], "VSIM_CACHE_MAX_BYTES", env);
    }
    if (cache_max_bytes > 0 && cache_dir.empty()) {
        std::fprintf(stderr, "--cache-max-bytes needs --cache-dir "
                             "(or VSIM_CACHE_DIR)\n");
        return 2;
    }

    try {
        const sim::NamedSweep &spec = sim::sweepByName(name);
        std::vector<sim::SweepJob> sweep_jobs = spec.build(opt);
        for (sim::SweepJob &job : sweep_jobs) {
            job.cfg.metricsInterval = metrics_interval;
            // Detailed per-prediction records are part of the jobKey:
            // a ledger-bearing result must not be served from (or to)
            // a run that did not collect records.
            job.cfg.specLedger = !ledger_path.empty();
            // Machine-axis overrides change what the builder's label
            // describes, so they leave a visible mark on it.
            if (window_override) {
                job.cfg.windowSize = *window_override;
                job.label += " window=" + std::to_string(
                                              *window_override);
            }
            if (fetch_width_override) {
                job.cfg.fetchWidth = *fetch_width_override;
                job.label += " fetch=" + std::to_string(
                                             *fetch_width_override);
            }
            // Sweep kind applies to every run: results are identical
            // by construction, so it is not part of the jobKey and a
            // dense pass can reuse a sparse pass's cached results.
            if (sweep_kind_override)
                job.cfg.sweepKind = *sweep_kind_override;
            // Shard partition + warmup depth are part of the jobKey
            // (finite warmup changes results); the worker count is an
            // execution resource like --jobs and is not.
            job.cfg.shards = shards;
            job.cfg.intervalInsts = interval_insts;
            job.cfg.warmupInsts = warmup_insts;
            job.cfg.sampleK = sample_k;
            job.cfg.sampleIntervalInsts = sample_interval_insts;
            job.cfg.shardJobs = shard_jobs;
            if (!job.cfg.useValuePrediction)
                continue;
            // Each override replaces only its own aspect of the job's
            // model: --model the latency variables, the scheme flags
            // the corresponding model variable.
            if (model_override) {
                core::SpecModel m = *model_override;
                m.verifyScheme = job.cfg.model.verifyScheme;
                m.invalScheme = job.cfg.model.invalScheme;
                m.selectPolicy = job.cfg.model.selectPolicy;
                m.branchNeedsValidOps =
                    job.cfg.model.branchNeedsValidOps;
                m.memNeedsValidOps = job.cfg.model.memNeedsValidOps;
                job.cfg.model = m;
            }
            if (verify_override)
                job.cfg.model.verifyScheme = *verify_override;
            if (inval_override)
                job.cfg.model.invalScheme = *inval_override;
            if (select_override)
                job.cfg.model.selectPolicy = *select_override;
            if (mem_valid_override)
                job.cfg.model.memNeedsValidOps = *mem_valid_override;
        }

        std::vector<sim::RunResult> results;
        // Spans are always collected: --json reports per-cell
        // wall-clock and simulation rate alongside the stats.
        std::vector<sim::JobSpan> spans;
        if (!server_sock.empty()) {
            // Thin-client mode: ship the batch to the daemon and map
            // the returned cells back into the local report pipeline,
            // so every output format below renders byte-identically
            // to a direct run.
            const std::vector<sim::ServerCell> cells =
                sim::runSweepOverSocket(server_sock, sweep_jobs);
            spans.resize(sweep_jobs.size());
            results.reserve(cells.size());
            for (std::size_t i = 0; i < cells.size(); ++i) {
                results.push_back(cells[i].result);
                spans[i].index = i;
                spans[i].label = sweep_jobs[i].label;
                spans[i].workload = sweep_jobs[i].workload;
                spans[i].worker = -1;
                spans[i].cacheHit = cells[i].cached;
            }
        } else {
            if (!cache_dir.empty()) {
                auto disk =
                    std::make_shared<sim::DiskRunCache>(cache_dir);
                disk->setMaxBytes(cache_max_bytes);
                sim::RunCache::process().attachDisk(std::move(disk));
            }
            sim::SweepRunner runner(jobs);
            runner.setProgress(progress);
            runner.setSpanSink(&spans);
            results = runner.run(sweep_jobs);
        }

        std::printf("== sweep %s: %zu runs (%d worker%s) ==\n\n",
                    spec.name.c_str(), sweep_jobs.size(), jobs,
                    jobs == 1 ? "" : "s");
        TextTable table;
        table.setHeader({"label", "workload", "cycles", "IPC",
                         "accuracy %"});
        for (std::size_t i = 0; i < sweep_jobs.size(); ++i) {
            const auto &r = results[i];
            table.addRow(
                {sweep_jobs[i].label, r.workload,
                 std::to_string(r.stats.cycles),
                 TextTable::fmt(r.ipc, 3),
                 sweep_jobs[i].cfg.useValuePrediction
                     ? TextTable::fmt(
                           100.0 * r.stats.predictionAccuracy(), 1)
                     : "-"});
        }
        std::printf("%s", table.render().c_str());

        if (!json_path.empty()) {
            sim::writeFile(json_path,
                           sim::toJson(sweep_jobs, results, spans));
            std::printf("\nwrote %s\n", json_path.c_str());
        }
        if (!csv_path.empty()) {
            sim::writeFile(csv_path, sim::toCsv(sweep_jobs, results));
            std::printf("\nwrote %s\n", csv_path.c_str());
        }
        if (!metrics_path.empty()) {
            sim::writeFile(metrics_path,
                           sim::metricsToCsv(sweep_jobs, results));
            std::printf("\nwrote %s\n", metrics_path.c_str());
        }
        if (!stacks_path.empty()) {
            sim::writeFile(stacks_path,
                           sim::stacksJson(sweep_jobs, results) + "\n");
            std::printf("\nwrote %s\n", stacks_path.c_str());
        }
        if (!ledger_path.empty()) {
            sim::writeFile(
                ledger_path,
                sim::ledgerJson(sweep_jobs, results, ledger_limit)
                    + "\n");
            std::printf("\nwrote %s\n", ledger_path.c_str());
        }
        if (!trace_json_path.empty()) {
            sim::writeFile(trace_json_path,
                           sim::sweepTraceJson(spans) + "\n");
            std::printf("\nwrote %s\n", trace_json_path.c_str());
        }
        return 0;
    } catch (const FatalError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
}
