# Demo program for vspec-asm: sums the first 100 integers.
        .data
msg:    .asciiz "sum="
        .text
        li a0, 0
        li a1, 1
        li a2, 101
loop:
        add a0, a0, a1
        addi a1, a1, 1
        bne a1, a2, loop

        la t0, msg
print:
        lbu t1, 0(t0)
        beqz t1, done
        putc t1
        addi t0, t0, 1
        j print
done:
        puti a0
        li t2, '\n'
        putc t2
        halt a0
