/**
 * @file
 * Pipeline viewer: runs a user-visible snippet with the pipeline
 * tracer enabled and prints the Figure-1-style cycle diagram for all
 * three named speculative execution models, with a deliberately
 * mispredicted instruction so the invalidation/reissue events are
 * visible (EX execute, W writeback, V verified, EQ! mispredicted,
 * I invalidated, RT retire).
 */

#include <cstdio>

#include "vsim/assembler/assembler.hh"
#include "vsim/core/ooo_core.hh"

int
main()
{
    using namespace vsim;

    const assembler::Program prog = assembler::assemble(R"(
        li t0, 900
        li t1, 30
        div a0, t0, t1      # slow producer: a0 = 30
    p:  addi a1, a0, 2      # value-predicted (wrongly, see below)
        addi a2, a1, 2
        addi a3, a2, 2
        halt a3
    )");

    for (const char *name : {"super", "great", "good"}) {
        core::CoreConfig cfg;
        cfg.useValuePrediction = true;
        cfg.model = core::SpecModel::byName(name);
        cfg.tracePipeline = true;

        core::OooCore core(prog, cfg);
        core.setPredictionOverride(
            [&prog](std::uint64_t pc, std::uint64_t actual)
                -> std::optional<std::uint64_t> {
                if (pc == prog.symbols.at("p"))
                    return actual + 7; // force a misprediction
                return std::nullopt;
            });
        const core::SimOutcome out = core.run();

        std::printf("==== model %-5s : %llu cycles, %llu reissues "
                    "====\n%s\n",
                    name,
                    static_cast<unsigned long long>(out.stats.cycles),
                    static_cast<unsigned long long>(
                        out.stats.reissues),
                    core.tracer().render(36, 72).c_str());
    }
    return 0;
}
