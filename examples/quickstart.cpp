/**
 * @file
 * Quickstart: assemble a small VRISC program, run it on the base
 * out-of-order core and with value speculation (great model), and
 * print IPC and speedup. This is the five-minute tour of the public
 * API: assembler -> CoreConfig/SpecModel -> OooCore -> stats.
 */

#include <cstdio>

#include "vsim/assembler/assembler.hh"
#include "vsim/core/ooo_core.hh"

int
main()
{
    using namespace vsim;

    // A value-predictable kernel: the same dependence chain of values
    // repeats every iteration, so the context predictor learns it.
    const char *source = R"(
        li a0, 5
        li s1, 3000
    loop:
        addi t0, a0, 1       # the chain below repeats identically
        addi t0, t0, 3
        addi t0, t0, 3
        addi t0, t0, 3
        addi t0, t0, 3
        addi a0, t0, -13     # back to 5: loop-carried dependence
        addi s1, s1, -1
        bnez s1, loop
        puti a0
        halt a0
    )";
    const assembler::Program prog = assembler::assemble(source);

    // ---- base machine: 8-wide, 48-entry window (paper's middle) ----
    core::CoreConfig base_cfg;
    base_cfg.issueWidth = 8;
    base_cfg.windowSize = 48;
    core::OooCore base(prog, base_cfg);
    const core::SimOutcome base_out = base.run();

    // ---- same machine with value speculation, great model ----------
    core::CoreConfig vp_cfg = base_cfg;
    vp_cfg.useValuePrediction = true;
    vp_cfg.model = core::SpecModel::greatModel();
    vp_cfg.confidence = core::ConfidenceKind::Real;
    vp_cfg.updateTiming = core::UpdateTiming::Delayed;
    core::OooCore vp(prog, vp_cfg);
    const core::SimOutcome vp_out = vp.run();

    std::printf("program output: \"%s\", exit code %llu\n",
                base_out.output.c_str(),
                static_cast<unsigned long long>(base_out.exitCode));
    std::printf("base : %8llu cycles, IPC %.2f\n",
                static_cast<unsigned long long>(base_out.stats.cycles),
                base_out.stats.ipc());
    std::printf("great: %8llu cycles, IPC %.2f, "
                "%llu verified / %llu invalidated predictions\n",
                static_cast<unsigned long long>(vp_out.stats.cycles),
                vp_out.stats.ipc(),
                static_cast<unsigned long long>(
                    vp_out.stats.verifyEvents),
                static_cast<unsigned long long>(
                    vp_out.stats.invalidateEvents));
    std::printf("speedup: %.3f\n",
                static_cast<double>(base_out.stats.cycles)
                    / static_cast<double>(vp_out.stats.cycles));
    return 0;
}
