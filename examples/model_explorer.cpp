/**
 * @file
 * Model explorer: defines *custom* speculative execution models (the
 * paper's framework is exactly that the latency variables span a
 * design space, §4) and sweeps one latency variable at a time on a
 * real workload, printing the sensitivity of speedup to each event.
 * Use this as a template for exploring your own models.
 */

#include <cstdio>

#include "vsim/base/stats.hh"
#include "vsim/sim/simulator.hh"

int
main()
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::SpecModel;
    using core::UpdateTiming;

    const sim::MachineConfig machine{8, 48};
    const char *workload = "m88k"; // most value-predictable kernel

    const auto base =
        sim::runWorkload(workload, -1, sim::baseConfig(machine));
    std::printf("workload %s on %s: base IPC %.2f\n\n", workload,
                machine.label().c_str(), base.ipc);

    struct Knob
    {
        const char *name;
        int SpecModel::*member;
    };
    const Knob knobs[] = {
        {"execToEquality", &SpecModel::execToEquality},
        {"equalityToVerify", &SpecModel::equalityToVerify},
        {"verifyToFreeResource", &SpecModel::verifyToFreeResource},
        {"invalidateToReissue", &SpecModel::invalidateToReissue},
        {"verifyToBranch", &SpecModel::verifyToBranch},
        {"verifyAddrToMem", &SpecModel::verifyAddrToMem},
    };

    TextTable table;
    table.setHeader({"latency variable", "0", "1", "2", "4"});
    for (const Knob &knob : knobs) {
        std::vector<std::string> row = {knob.name};
        for (int lat : {0, 1, 2, 4}) {
            SpecModel model = SpecModel::greatModel();
            model.*(knob.member) = lat;
            const auto vp = sim::runWorkload(
                workload, -1,
                sim::vpConfig(machine, model, ConfidenceKind::Real,
                              UpdateTiming::Immediate));
            row.push_back(TextTable::fmt(sim::speedup(base, vp), 3));
        }
        table.addRow(row);
    }
    std::printf("speedup over base while sweeping one latency "
                "variable\n(all others at the great model's "
                "values):\n\n%s",
                table.render().c_str());
    return 0;
}
