/**
 * @file
 * Predictor lab: drives the value-predictor components directly
 * (outside the core) on synthetic value streams — repeating sequences,
 * strides, near-repeating and random streams — to show how FCM,
 * last-value, stride and the hybrid differ, and how the resetting
 * confidence counters gate speculation. Useful when designing new
 * predictors against the ValuePredictor interface.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "vsim/base/random.hh"
#include "vsim/base/stats.hh"
#include "vsim/vpred/vpred.hh"

namespace
{

using namespace vsim;

/** Immediate-update accuracy of @p vp on @p stream at one PC. */
double
accuracyOn(vpred::ValuePredictor &vp,
           const std::vector<std::uint64_t> &stream)
{
    const std::uint64_t pc = 0x1000;
    std::uint64_t ok = 0;
    for (std::uint64_t v : stream) {
        const vpred::Prediction p = vp.predict(pc);
        ok += p.value == v;
        vp.pushHistory(pc, v);
        vp.updateTable(pc, p.token, v);
    }
    return 100.0 * static_cast<double>(ok)
           / static_cast<double>(stream.size());
}

std::vector<std::uint64_t>
makeStream(const char *kind, std::size_t n)
{
    std::vector<std::uint64_t> out;
    out.reserve(n);
    Xoshiro256 rng(42);
    for (std::size_t i = 0; i < n; ++i) {
        if (std::string(kind) == "constant") {
            out.push_back(7);
        } else if (std::string(kind) == "repeating8") {
            const std::uint64_t seq[8] = {3, 1, 4, 1, 5, 9, 2, 6};
            out.push_back(seq[i % 8]);
        } else if (std::string(kind) == "stride") {
            out.push_back(1000 + 8 * i);
        } else if (std::string(kind) == "near-repeating") {
            // period-16 sequence with an occasional glitch
            const std::uint64_t v = (i % 16) * 3;
            out.push_back(i % 97 == 0 ? v + 1 : v);
        } else { // random
            out.push_back(rng.next());
        }
    }
    return out;
}

} // namespace

int
main()
{
    const std::size_t n = 4096;
    const char *streams[] = {"constant", "repeating8", "stride",
                             "near-repeating", "random"};

    TextTable table;
    table.setHeader({"stream", "fcm", "last-value", "stride",
                     "hybrid"});
    for (const char *s : streams) {
        const auto stream = makeStream(s, n);
        std::vector<std::string> row = {s};
        for (const char *kind :
             {"fcm", "last-value", "stride", "hybrid"}) {
            auto vp = vpred::makeValuePredictor(kind);
            row.push_back(TextTable::fmt(accuracyOn(*vp, stream), 1));
        }
        table.addRow(row);
    }
    std::printf("prediction accuracy (%%) per predictor and value "
                "stream (%zu values each):\n\n%s\n",
                n, table.render().c_str());

    // Confidence gating demo: how often does a 3-bit resetting counter
    // let a 90%-accurate prediction stream speculate?
    vpred::ResettingConfidence conf(3, 10);
    Xoshiro256 rng(7);
    std::uint64_t confident = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; ++i) {
        const bool correct = rng.nextBool(0.9);
        confident += conf.confident(0x40);
        conf.update(0x40, correct);
    }
    std::printf("3-bit resetting counter on a 90%%-accurate stream: "
                "confident %.1f%% of the time\n",
                100.0 * static_cast<double>(confident)
                    / static_cast<double>(total));
    std::printf("(the paper's §6 point: resetting counters trade away "
                "many correct predictions (CL) to keep IH below 1%%)\n");
    return 0;
}
