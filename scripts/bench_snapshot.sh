#!/usr/bin/env bash
# Capture the simulator microbenchmark rates as a committed snapshot
# (BENCH_PR10.json at the repo root): benchmark name (with its label,
# when one distinguishes repetitions) -> inst/s, falling back to
# simcycles/s (cycle-rate benchmarks) and scan/s (the mask-scan A/B).
# Rates are medians of three repetitions so the committed baseline is
# not a single lucky scheduler slot. When the previous snapshot
# (BENCH_PR8.json, captured before the sampled-replay PR) is present,
# a "vs_pr8" section records the per-benchmark ratio (new rate / old
# rate). Those ratios are reporting, not gates: this container's
# ambient speed drifts a few percent between capture dates, and
# non-uniformly across benchmarks, so cross-snapshot comparisons
# confound code changes with machine drift. The perf gates in
# scripts/check.sh are same-process A/Bs (or compare against this
# snapshot's own capture, re-baselined each bench PR) for exactly that
# reason.
#
# A "sample_scaling" section measures the SimPoint-style sampled
# replay on a ~100M-instruction workload: full-detail wall clock
# versus a --sample 8 run, both paying the same in-memory functional
# pre-execution. (Replaying a recorded ~100M-entry .vst instead is
# memory-bound on this container — the strict reader parses the
# multi-gigabyte file at a fraction of simulation speed — so the
# workload form is the honest measurement here.) The representatives
# are executed sequentially (--jobs 1) so each per-rep wall time is
# an unpolluted single-worker measurement on this single-CPU
# container; the reported speedup is the wall-clock ratio an 8-worker
# machine (--jobs 8) achieves, modeled as the serial overhead (trace
# generation, BBV profiling, clustering, warmup snapshots, merge)
# plus the makespan of the rep walls FIFO-assigned to 8 workers. The
# section also records the sampled-vs-full error of the base/great
# speedup ratio at this scale. Run from the repo root after a
# Release build:
#
#   scripts/bench_snapshot.sh
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --build build -j --target perf_simulator vspec_run >/dev/null

out=build/bench/bench_snapshot.json
./build/bench/perf_simulator \
    --benchmark_min_time=1 --benchmark_repetitions=3 \
    --benchmark_out="$out" \
    --benchmark_out_format=json >/dev/null 2>&1

# ---- sampled scaling (~100M instructions: queens scale 247) ----------
scale=247
mono_great=build/bench/sample_mono_great.txt
mono_base=build/bench/sample_mono_base.txt
samp_great=build/bench/sample_great.txt
samp_base=build/bench/sample_base.txt
samp_log=build/bench/sample_great_log.txt
mono_t0=$(date +%s.%N)
./build/tools/vspec_run --workload queens --scale "$scale" \
    --model great > "$mono_great" 2>/dev/null
mono_t1=$(date +%s.%N)
./build/tools/vspec_run --workload queens --scale "$scale" \
    --base > "$mono_base" 2>/dev/null
samp_t0=$(date +%s.%N)
./build/tools/vspec_run --workload queens --scale "$scale" \
    --model great --sample 8 --jobs 1 \
    > "$samp_great" 2> "$samp_log"
samp_t1=$(date +%s.%N)
./build/tools/vspec_run --workload queens --scale "$scale" \
    --base --sample 8 --jobs 1 > "$samp_base" 2>/dev/null

python3 - "$out" BENCH_PR8.json "$mono_great" "$mono_base" \
    "$samp_great" "$samp_base" "$samp_log" \
    "$mono_t0" "$mono_t1" "$samp_t0" "$samp_t1" <<'EOF' > BENCH_PR10.json
import json, os, re, statistics, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
reps = {}
for b in report["benchmarks"]:
    if b.get("run_type") != "iteration":
        continue
    name = b["name"].rsplit("/repeats:", 1)[0]
    if b.get("label"):
        name = f"{name.split('/')[0]}/{b['label']}"
    rate = b.get("inst/s", b.get("simcycles/s", b.get("scan/s")))
    if rate is not None:
        reps.setdefault(name, []).append(rate)
rates = {name: round(statistics.median(r)) for name, r in reps.items()}
snapshot = dict(sorted(rates.items()))
if os.path.exists(sys.argv[2]):
    with open(sys.argv[2]) as f:
        prev = json.load(f)
    snapshot["vs_pr8"] = {
        name: round(rates[name] / prev[name], 3)
        for name in sorted(rates)
        if isinstance(prev.get(name), (int, float)) and prev[name]
    }

def stat(path, field):
    with open(path) as f:
        return int(re.search(rf"{field}\s*:\s*(\d+)", f.read()).group(1))

insts = stat(sys.argv[3], "instructions")
mono_wall = float(sys.argv[9]) - float(sys.argv[8])
samp_wall = float(sys.argv[11]) - float(sys.argv[10])
with open(sys.argv[7]) as f:
    log = f.read()
phases = int(re.search(r"-> (\d+) phase\(s\)", log).group(1))
rep_walls = [float(w) for w in
             re.findall(r"sample rep \d+/\d+ .* wall=([0-9.e+-]+)s",
                        log)]
assert len(rep_walls) == phases, log
# FIFO-assign the rep walls to 8 workers in plan order: elapsed is
# the makespan; everything else in the sampled run is serial.
workers = [0.0] * 8
for w in rep_walls:
    workers[workers.index(min(workers))] += w
serial = samp_wall - sum(rep_walls)
modeled = serial + max(workers)
full_speedup = stat(sys.argv[4], "cycles") / stat(sys.argv[3], "cycles")
samp_speedup = stat(sys.argv[6], "cycles") / stat(sys.argv[5], "cycles")
snapshot["sample_scaling"] = {
    "workload": "queens",
    "instructions": insts,
    "sample_k": 8,
    "interval_insts": 1000000,
    "phases": phases,
    "monolithic_wall_s": round(mono_wall, 2),
    "sampled_wall_jobs1_s": round(samp_wall, 2),
    "sampled_serial_s": round(serial, 2),
    "sum_rep_wall_s": round(sum(rep_walls), 2),
    "modeled_wall_jobs8_s": round(modeled, 2),
    "speedup_at_jobs8": round(mono_wall / modeled, 2),
    "speedup_full": round(full_speedup, 4),
    "speedup_sampled": round(samp_speedup, 4),
    "speedup_rel_err": round(abs(samp_speedup / full_speedup - 1), 4),
}
print(json.dumps(snapshot, indent=2))
EOF

echo "wrote BENCH_PR10.json:"
cat BENCH_PR10.json
