#!/usr/bin/env bash
# Capture the simulator microbenchmark rates as a committed snapshot
# (BENCH_PR7.json at the repo root): benchmark name (with its label,
# when one distinguishes repetitions) -> inst/s, falling back to
# simcycles/s for benchmarks that only report a cycle rate. When the
# previous snapshot (BENCH_PR5.json, captured before the CPI-stack
# attribution landed) is present, a "vs_pr5" section records the
# attribution-off overhead per shared benchmark (new rate / old rate).
# Run from the repo root after a RelWithDebInfo build:
#
#   scripts/bench_snapshot.sh
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --build build -j --target perf_simulator >/dev/null

out=build/bench/bench_snapshot.json
./build/bench/perf_simulator \
    --benchmark_min_time=1 \
    --benchmark_out="$out" \
    --benchmark_out_format=json >/dev/null 2>&1

python3 - "$out" BENCH_PR5.json <<'EOF' > BENCH_PR7.json
import json, os, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
rates = {}
for b in report["benchmarks"]:
    name = b["name"]
    if b.get("label"):
        name = f"{name.split('/')[0]}/{b['label']}"
    rate = b.get("inst/s", b.get("simcycles/s"))
    if rate is not None:
        rates[name] = round(rate)
snapshot = dict(sorted(rates.items()))
if os.path.exists(sys.argv[2]):
    with open(sys.argv[2]) as f:
        prev = json.load(f)
    snapshot["vs_pr5"] = {
        name: round(rates[name] / prev[name], 3)
        for name in sorted(rates)
        if name in prev and prev[name]
    }
print(json.dumps(snapshot, indent=2))
EOF

echo "wrote BENCH_PR7.json:"
cat BENCH_PR7.json
