#!/usr/bin/env bash
# Capture the simulator microbenchmark rates as a committed snapshot
# (BENCH_PR8.json at the repo root): benchmark name (with its label,
# when one distinguishes repetitions) -> inst/s, falling back to
# simcycles/s for benchmarks that only report a cycle rate. When the
# previous snapshot (BENCH_PR7.json, captured before the SoA window
# split and the shard runner landed) is present, a "vs_pr7" section
# records the per-benchmark ratio (new rate / old rate) — the SoA
# gate is vs_pr7 >= 1.0 on the window-256 value-speculation rates.
#
# A "shard_scaling" section measures the sharded-run speedup on a
# ~100M-instruction workload: the monolithic wall clock versus the
# critical path of an 8-shard run (functional-warmup pass + slowest
# shard). The shards are executed sequentially (--jobs 1) so each
# per-shard wall time is an unpolluted single-worker measurement on
# this single-CPU container; the reported speedup is the wall-clock
# ratio an 8-worker machine (--jobs 8) achieves, since with 8 shards
# on 8 workers the elapsed time is exactly warmup + max(shard wall).
# Run from the repo root after a RelWithDebInfo build:
#
#   scripts/bench_snapshot.sh
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --build build -j --target perf_simulator vspec_run >/dev/null

out=build/bench/bench_snapshot.json
./build/bench/perf_simulator \
    --benchmark_min_time=1 \
    --benchmark_out="$out" \
    --benchmark_out_format=json >/dev/null 2>&1

# ---- shard scaling (~100M instructions: queens scale 247) ------------
scale=247
mono_log=build/bench/shard_mono.txt
shard_log=build/bench/shard_sharded.txt
mono_t0=$(date +%s.%N)
./build/tools/vspec_run --workload queens --scale "$scale" \
    --model great > "$mono_log" 2>/dev/null
mono_t1=$(date +%s.%N)
./build/tools/vspec_run --workload queens --scale "$scale" \
    --model great --shards 8 --warmup-insts 1000000 --jobs 1 \
    > /dev/null 2> "$shard_log"

python3 - "$out" BENCH_PR7.json "$mono_log" "$shard_log" \
    "$mono_t0" "$mono_t1" <<'EOF' > BENCH_PR8.json
import json, os, re, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
rates = {}
for b in report["benchmarks"]:
    name = b["name"]
    if b.get("label"):
        name = f"{name.split('/')[0]}/{b['label']}"
    rate = b.get("inst/s", b.get("simcycles/s"))
    if rate is not None:
        rates[name] = round(rate)
snapshot = dict(sorted(rates.items()))
if os.path.exists(sys.argv[2]):
    with open(sys.argv[2]) as f:
        prev = json.load(f)
    snapshot["vs_pr7"] = {
        name: round(rates[name] / prev[name], 3)
        for name in sorted(rates)
        if name in prev and prev[name]
    }

with open(sys.argv[3]) as f:
    mono = f.read()
insts = int(re.search(r"instructions\s*:\s*(\d+)", mono).group(1))
mono_wall = float(sys.argv[6]) - float(sys.argv[5])
with open(sys.argv[4]) as f:
    sharded = f.read()
warmup = re.search(r"shard warmup: .* in ([0-9.e+-]+)s", sharded)
warmup_wall = float(warmup.group(1)) if warmup else 0.0
shard_walls = [float(w) for w in
               re.findall(r"shard \d+/\d+ .* wall=([0-9.e+-]+)s",
                          sharded)]
assert len(shard_walls) == 8, sharded
critical = warmup_wall + max(shard_walls)
snapshot["shard_scaling"] = {
    "workload": "queens",
    "instructions": insts,
    "shards": 8,
    "warmup_insts": 1000000,
    "monolithic_wall_s": round(mono_wall, 2),
    "warmup_pass_wall_s": round(warmup_wall, 2),
    "max_shard_wall_s": round(max(shard_walls), 2),
    "sum_shard_wall_s": round(sum(shard_walls), 2),
    "speedup_at_jobs8": round(mono_wall / critical, 2),
}
print(json.dumps(snapshot, indent=2))
EOF

echo "wrote BENCH_PR8.json:"
cat BENCH_PR8.json
