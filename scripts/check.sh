#!/usr/bin/env bash
# Tier-1 verification: the normal build + full test suite, sanitizer
# builds, byte-identity of the user-facing outputs against the golden
# captures, and the ready-list scheduler's perf gate. Run from the
# repo root:
#
#   scripts/check.sh
#
# The sanitizer stages rebuild into build-tsan/ and build-asan/ so
# they never disturb the primary build tree.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j)

echo "== tier-1: ThreadSanitizer (test_sweep, test_obs, test_cpi, test_sweepdiff) =="
cmake -B build-tsan -S . -DVSIM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target test_sweep test_obs test_cpi \
    test_sweepdiff test_shard
./build-tsan/tests/test_sweep
./build-tsan/tests/test_obs
# CPI-stack / ledger identity across worker counts runs a real pool.
./build-tsan/tests/test_cpi
# The randomized sparse-vs-dense sweep differential also runs here:
# its programs are sized for sanitizer throughput.
./build-tsan/tests/test_sweepdiff
# The shard runner's worker pool hands per-shard results back across
# threads for the ordered merge; the inline-vs-pool identity test
# drives it end to end.
./build-tsan/tests/test_shard \
    --gtest_filter='ShardMerge.ParallelWorkersMatchInline'
# The sweep daemon's accept loop, per-connection threads, batch
# condvars and disk-backed RunCache are this PR's concurrency
# surface. The fork-based two-process test stays out: forking a
# threaded TSan process is undefined.
cmake --build build-tsan -j --target test_disk_cache
./build-tsan/tests/test_disk_cache --gtest_filter='-DiskCacheProcess.*'
# Sampled replay details representatives on the shared ThreadPool and
# merges their weighted stats in plan order; the jobs-1-vs-4 identity
# test drives that path end to end. The eight-kernel error-bound test
# stays in ctest: it reruns every kernel at full detail.
cmake --build build-tsan -j --target test_sample
./build-tsan/tests/test_sample --gtest_filter=\
'SampledRun.*-SampledRun.SpeedupErrorWithinBoundOnEveryKernel'

echo "== tier-1: Address+UB Sanitizer (core, policy, scheduler) =="
cmake -B build-asan -S . -DVSIM_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j --target \
    test_core_base test_core_vspec test_core_misc test_core_xprod \
    test_policy test_event_queue test_scheduler test_sweepdiff test_cpi
./build-asan/tests/test_core_base
./build-asan/tests/test_core_vspec
./build-asan/tests/test_core_misc
# The ledger's slot-indexed record table is allocation-lifetime
# territory; run the attribution/ledger suite under ASan too.
./build-asan/tests/test_cpi
./build-asan/tests/test_policy
./build-asan/tests/test_event_queue
./build-asan/tests/test_scheduler
./build-asan/tests/test_sweepdiff
# The full cross product is covered (without sanitizers) by ctest;
# under ASan run the regression slice plus the speculative
# memory-resolution slice (memDeps bookkeeping is exactly the kind of
# lifetime bug the sanitizers exist for) to keep the gate fast. The
# sparse/dense identity test adds the subscriber-index invariant
# checker (stale-entry pruning touches freed slots) on full windows.
./build-asan/tests/test_core_xprod --gtest_filter=\
'CoreXprod.MixedHierVerifyFlatInvalRegression:CoreXprod.SpecMemResolutionAcrossSchemes:CoreXprod.SparseDenseIdentityAcrossSchemes'
# The trace frontend moves raw bytes through fixed-layout structs and
# hand-rolled buffers — exactly ASan/UBSan territory. Run the strict-
# reader rejection cases and one full record/replay round trip (queens
# covers both window sizes and both sweep kinds).
cmake --build build-asan -j --target test_trace
./build-asan/tests/test_trace --gtest_filter=\
'TraceReject.*:TraceRoundTrip.Queens:TraceWorkload.*'
# Snapshot serialization moves raw bytes through tagged sections, and
# the full-warmup shard merge walks every seam-coalescing path
# (interval halves, ledger carries) over slot-indexed state — both
# sanitizer territory. The remaining shard tests rerun whole kernels
# many times over; ctest covers them unsanitized.
cmake --build build-asan -j --target test_shard
./build-asan/tests/test_shard --gtest_filter=\
'Snapshot.*:PlanShards.*:ShardMerge.FullWarmupIdenticalAcrossShardCounts:ShardMerge.ParallelWorkersMatchInline'
# The disk-cache codec and the daemon wire protocol move raw bytes
# through hand-rolled buffers, hex decoding and checksum scans —
# ASan/UBSan territory end to end (including the corrupt/truncated
# eviction paths and the fork-based two-process store test).
cmake --build build-asan -j --target test_disk_cache
./build-asan/tests/test_disk_cache
# BBV accumulation, the k-means clusterer and the weighted merges all
# index into freshly-sized vectors by computed cluster/bucket ids —
# off-by-one territory ASan/UBSan sees directly. The eight-kernel
# error-bound test is excluded for runtime (ctest covers it).
cmake --build build-asan -j --target test_sample
./build-asan/tests/test_sample --gtest_filter=\
'-SampledRun.SpeedupErrorWithinBoundOnEveryKernel'

echo "== tier-1: golden byte-identity (vspec_run / vspec_sweep) =="
# Every user-facing table and run output must match the pre-refactor
# captures byte for byte — under both sweep domains: the sparse
# subscriber-list sweeps (the default) and the legacy dense scans
# must be indistinguishable in every output.
for kind in sparse dense; do
    for wl in queens compress m88k; do
        ./build/tools/vspec_run --workload "$wl" --scale 1 --base \
            --sweep-kind "$kind" \
            | diff - "tests/golden/run_${wl}_base.txt"
        for model in super great good; do
            ./build/tools/vspec_run --workload "$wl" --scale 1 \
                --model "$model" --sweep-kind "$kind" \
                | diff - "tests/golden/run_${wl}_${model}.txt"
            # Speculative memory resolution (§3.2) has its own
            # captures; the valid-ops outputs above must stay
            # untouched by it.
            ./build/tools/vspec_run --workload "$wl" --scale 1 \
                --model "$model" --mem-resolution spec \
                --sweep-kind "$kind" \
                | diff - "tests/golden/run_${wl}_${model}_specmem.txt"
        done
    done
    for sweep in base fig3 fig4 confidence predictors verif-latency \
                 reissue-latency; do
        ./build/tools/vspec_sweep "$sweep" --quick --scale 1 --jobs 4 \
            --sweep-kind "$kind" \
            | diff - "tests/golden/sweep_${sweep}.txt"
    done
done
# The 78 cross-product stats digests must also be identical under the
# dense scans (ctest covers the sparse default).
VSIM_XPROD_SWEEP=dense ./build/tests/test_core_xprod >/dev/null
echo "golden outputs identical (sparse and dense)"

echo "== tier-1: trace JSON validity =="
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
./build/tools/vspec_run --workload queens --scale 1 --base \
    --trace-retain 200 --trace-json "$obs_dir/pipeline.json" >/dev/null
./build/tools/vspec_sweep base --quick --scale 1 --jobs 2 \
    --metrics-interval 500 --metrics "$obs_dir/metrics.csv" \
    --trace-json "$obs_dir/sweep.json" >/dev/null
python3 -m json.tool "$obs_dir/pipeline.json" >/dev/null
python3 -m json.tool "$obs_dir/sweep.json" >/dev/null
echo "trace JSON OK"

echo "== tier-1: CPI stack / ledger JSON validity =="
./build/tools/vspec_run --workload queens --scale 1 --model great \
    --stacks "$obs_dir/run_stacks.json" \
    --ledger "$obs_dir/run_ledger.json" --ledger-limit 50 >/dev/null
./build/tools/vspec_sweep base --quick --scale 1 --jobs 2 \
    --json "$obs_dir/sweep_cells.json" \
    --stacks "$obs_dir/sweep_stacks.json" \
    --ledger "$obs_dir/sweep_ledger.json" >/dev/null
python3 -m json.tool "$obs_dir/run_stacks.json" >/dev/null
python3 -m json.tool "$obs_dir/run_ledger.json" >/dev/null
python3 -m json.tool "$obs_dir/sweep_cells.json" >/dev/null
python3 -m json.tool "$obs_dir/sweep_stacks.json" >/dev/null
python3 -m json.tool "$obs_dir/sweep_ledger.json" >/dev/null
# The diff tool must parse its own drivers' outputs.
./build/tools/vspec_stacks "$obs_dir/run_stacks.json" \
    "$obs_dir/run_stacks.json" >/dev/null
echo "CPI stack / ledger JSON OK"

echo "== tier-1: persistent run cache (warm run identical, all hits) =="
# A sweep re-run over a populated --cache-dir must be byte-identical
# in every deterministic output and simulate nothing; and the
# flags-off output must be untouched by the feature existing.
# The "wrote <path>" announcements name the caller-chosen output
# files, which legitimately differ between the runs — compare the
# table content, not those lines.
sweep_table() { grep -v -e '^wrote ' -e '^$' "$1"; }
cache_dir="$obs_dir/runcache"
./build/tools/vspec_sweep base --quick --scale 1 --jobs 4 \
    --cache-dir "$cache_dir" --csv "$obs_dir/cache_cold.csv" \
    > "$obs_dir/cache_cold.txt"
./build/tools/vspec_sweep base --quick --scale 1 --jobs 4 \
    --cache-dir "$cache_dir" --csv "$obs_dir/cache_warm.csv" \
    --json "$obs_dir/cache_warm.json" > "$obs_dir/cache_warm.txt"
diff <(sweep_table "$obs_dir/cache_cold.txt") \
     <(sweep_table "$obs_dir/cache_warm.txt")
diff "$obs_dir/cache_cold.csv" "$obs_dir/cache_warm.csv"
./build/tools/vspec_sweep base --quick --scale 1 --jobs 4 \
    > "$obs_dir/cache_off.txt"
diff <(sweep_table "$obs_dir/cache_off.txt") \
     <(sweep_table "$obs_dir/cache_cold.txt")
python3 - "$obs_dir/cache_warm.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    cells = json.load(f)
hits = sum(c["cache_hit"] for c in cells)
print(f"warm sweep: {hits}/{len(cells)} cells served from the cache")
sys.exit(0 if cells and hits == len(cells) else 1)
EOF

echo "== tier-1: sweep daemon (concurrent clients, restart, all hits) =="
sock="$obs_dir/sweepd.sock"
daemon_cache="$obs_dir/daemon-cache"
./build/tools/vspec_sweepd --socket "$sock" \
    --cache-dir "$daemon_cache" --workers 4 \
    2> "$obs_dir/sweepd1.log" &
daemon_pid=$!
for _ in $(seq 100); do [ -S "$sock" ] && break; sleep 0.05; done
# Two concurrent clients with overlapping grids; the daemon dedupes
# shared cells through its one RunCache.
./build/tools/vspec_sweep base --quick --scale 1 --jobs 4 \
    --server "$sock" > "$obs_dir/daemon_a.txt" &
client_a=$!
./build/tools/vspec_sweep fig4 --quick --scale 1 --jobs 4 \
    --server "$sock" > "$obs_dir/daemon_b.txt" &
client_b=$!
wait "$client_a" "$client_b"
kill "$daemon_pid"
wait "$daemon_pid" || true
# Restart over the same disk cache: the re-swept batch must arrive
# without a single simulation and byte-identical.
./build/tools/vspec_sweepd --socket "$sock" \
    --cache-dir "$daemon_cache" --workers 4 \
    2> "$obs_dir/sweepd2.log" &
daemon_pid=$!
for _ in $(seq 100); do [ -S "$sock" ] && break; sleep 0.05; done
./build/tools/vspec_sweep base --quick --scale 1 --jobs 4 \
    --server "$sock" --json "$obs_dir/daemon_a2.json" \
    > "$obs_dir/daemon_a2.txt"
kill "$daemon_pid"
wait "$daemon_pid" || true
diff <(sweep_table "$obs_dir/daemon_a.txt") \
     <(sweep_table "$obs_dir/daemon_a2.txt")
# And a daemon-served sweep must match the direct (in-process) run
# byte for byte, given the same --jobs header.
./build/tools/vspec_sweep base --quick --scale 1 --jobs 4 \
    > "$obs_dir/daemon_direct.txt"
diff <(sweep_table "$obs_dir/daemon_direct.txt") \
     <(sweep_table "$obs_dir/daemon_a.txt")
python3 - "$obs_dir/daemon_a2.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    cells = json.load(f)
hits = sum(c["cache_hit"] for c in cells)
print(f"restarted daemon: {hits}/{len(cells)} cells from the disk cache")
sys.exit(0 if cells and hits == len(cells) else 1)
EOF

echo "== tier-1: trace record/replay identity =="
# A recorded .vst trace replayed through the timing core must be
# byte-identical to direct simulation of the same kernel — the whole
# point of the decode-free frontend. Gate it end to end through the
# CLI at the paper's machine and at the CVP-scale window.
./build/tools/vspec_tracegen --workload queens --scale 1 \
    -o "$obs_dir/queens.vst" >/dev/null
./build/tools/vspec_run --workload queens --scale 1 --model great \
    > "$obs_dir/direct_48.txt"
./build/tools/vspec_run --trace "$obs_dir/queens.vst" --model great \
    | sed "s|trace:$obs_dir/queens.vst|queens|" \
    | diff - "$obs_dir/direct_48.txt"
./build/tools/vspec_run --workload queens --scale 1 --model great \
    --window 512 --fetch-width 16 > "$obs_dir/direct_512.txt"
./build/tools/vspec_run --trace "$obs_dir/queens.vst" --model great \
    --window 512 --fetch-width 16 \
    | sed "s|trace:$obs_dir/queens.vst|queens|" \
    | diff - "$obs_dir/direct_512.txt"
echo "trace replay identical to direct simulation (window 48 and 512)"

echo "== tier-1: sharded run identity (full warmup) =="
# At full warmup (the default) the shard partition is exact: every
# user-facing artifact of an 8-shard run must be byte-identical to the
# 1-shard run — the report, the CPI stacks, the speculation ledger,
# and the interval-metrics CSV. --jobs 2 keeps a real worker pool in
# the loop on the 8-shard side.
for shards in 1 8; do
    ./build/tools/vspec_run --workload queens --scale 1 --model great \
        --shards "$shards" --jobs 2 \
        --stacks "$obs_dir/shard${shards}_stacks.json" \
        --ledger "$obs_dir/shard${shards}_ledger.json" \
        --ledger-limit 200 \
        --metrics "$obs_dir/shard${shards}_metrics.csv" \
        --metrics-interval 1000 \
        > "$obs_dir/shard${shards}_report.txt" 2>/dev/null
done
for f in report.txt stacks.json ledger.json metrics.csv; do
    diff "$obs_dir/shard1_$f" "$obs_dir/shard8_$f"
done
echo "1-shard and 8-shard outputs identical"

echo "== tier-1: sharded finite-warmup speedup error (<= 1%) =="
# With finite warmup the shards start from functional-warmup
# snapshots and the partition is approximate. The paper-level
# deliverable — harmonic-mean speedup of a value-predicting machine
# over the base machine across kernels — must stay within 1% of the
# monolithic value.
for wl in queens compress m88k; do
    ./build/tools/vspec_run --workload "$wl" --scale 1 --base \
        > "$obs_dir/hm_${wl}_base_mono.txt"
    ./build/tools/vspec_run --workload "$wl" --scale 1 --model great \
        > "$obs_dir/hm_${wl}_great_mono.txt"
    ./build/tools/vspec_run --workload "$wl" --scale 1 --base \
        --shards 4 --warmup-insts 20000 \
        > "$obs_dir/hm_${wl}_base_shard.txt" 2>/dev/null
    ./build/tools/vspec_run --workload "$wl" --scale 1 --model great \
        --shards 4 --warmup-insts 20000 \
        > "$obs_dir/hm_${wl}_great_shard.txt" 2>/dev/null
done
python3 - "$obs_dir" <<'EOF'
import re, statistics, sys

def cycles(path):
    with open(path) as f:
        return int(re.search(r"cycles\s*:\s*(\d+)", f.read()).group(1))

d = sys.argv[1]

def hmean(kind):
    return statistics.harmonic_mean(
        [cycles(f"{d}/hm_{wl}_base_{kind}.txt")
         / cycles(f"{d}/hm_{wl}_great_{kind}.txt")
         for wl in ("queens", "compress", "m88k")])

mono, shard = hmean("mono"), hmean("shard")
err = abs(shard / mono - 1)
print(f"hmean speedup: monolithic {mono:.4f}, sharded {shard:.4f} "
      f"-> {err * 100:.3f}% error")
sys.exit(0 if err <= 0.01 else 1)
EOF

echo "== tier-1: sampled-run speedup error (<= 2%) =="
# SimPoint-style sampling (--sample k) replays one representative per
# phase and scales its stats by the phase population. Absolute counts
# are approximate by design, but the paper-level deliverable — the
# harmonic-mean speedup of the value-predicting machine over base —
# must stay within 2% of the full-detail value. Reuses the monolithic
# runs captured by the finite-warmup stage above. (The per-kernel
# bound on all eight kernels runs in tests/test_sample.cc.)
for wl in queens compress m88k; do
    ./build/tools/vspec_run --workload "$wl" --scale 1 --base \
        --sample 4 --sample-interval-insts 20000 --jobs 4 \
        > "$obs_dir/hm_${wl}_base_sampled.txt" 2>/dev/null
    ./build/tools/vspec_run --workload "$wl" --scale 1 --model great \
        --sample 4 --sample-interval-insts 20000 --jobs 4 \
        > "$obs_dir/hm_${wl}_great_sampled.txt" 2>/dev/null
done
python3 - "$obs_dir" <<'EOF'
import re, statistics, sys

def cycles(path):
    with open(path) as f:
        return int(re.search(r"cycles\s*:\s*(\d+)", f.read()).group(1))

d = sys.argv[1]

def hmean(kind):
    return statistics.harmonic_mean(
        [cycles(f"{d}/hm_{wl}_base_{kind}.txt")
         / cycles(f"{d}/hm_{wl}_great_{kind}.txt")
         for wl in ("queens", "compress", "m88k")])

full, sampled = hmean("mono"), hmean("sampled")
err = abs(sampled / full - 1)
print(f"hmean speedup: full {full:.4f}, sampled {sampled:.4f} "
      f"-> {err * 100:.3f}% error")
sys.exit(0 if err <= 0.02 else 1)
EOF
# The committed ~100M-instruction scaling measurement (re-captured by
# scripts/bench_snapshot.sh) must show sampling earning its keep:
# >= 5x modeled wall-clock speedup at 8 workers, and a <= 2% error on
# the base/great speedup ratio at that scale.
python3 - BENCH_PR10.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    s = json.load(f)["sample_scaling"]
print(f"sample_scaling: {s['speedup_at_jobs8']}x at jobs=8, "
      f"{s['speedup_rel_err'] * 100:.2f}% speedup error "
      f"({s['instructions']} insts, {s['phases']} phases)")
sys.exit(0 if s["speedup_at_jobs8"] >= 5.0
         and s["speedup_rel_err"] <= 0.02 else 1)
EOF

echo "== tier-1: scheduler perf gate (window 256) =="
# The ready-list scheduler must simulate >= 1.3x the cycles/second of
# the legacy scan at --window 256; the measurement is kept as
# google-benchmark JSON in build/bench/.
./build/bench/perf_simulator \
    --benchmark_filter='BM_OooWindow256' --benchmark_min_time=1 \
    --benchmark_out=build/bench/perf_window256.json \
    --benchmark_out_format=json >/dev/null 2>&1
python3 - build/bench/perf_window256.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
rates = {}
for b in report["benchmarks"]:
    rates[b["label"]] = b["simcycles/s"]
ratio = rates["ready-list"] / rates["scan"]
print(f"scan {rates['scan']:.0f} cyc/s, ready-list "
      f"{rates['ready-list']:.0f} cyc/s -> {ratio:.2f}x")
sys.exit(0 if ratio >= 1.3 else 1)
EOF

echo "== tier-1: sweep perf gate (window 256) =="
# The sparse subscriber-list sweeps must simulate >= 1.3x the
# cycles/second of the legacy dense window scans on the 256-entry
# value-speculation benchmark.
./build/bench/perf_simulator \
    --benchmark_filter='BM_OooValueSpeculation/256' \
    --benchmark_min_time=1 \
    --benchmark_out=build/bench/perf_sweep256.json \
    --benchmark_out_format=json >/dev/null 2>&1
python3 - build/bench/perf_sweep256.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
rates = {}
for b in report["benchmarks"]:
    rates[b["label"]] = b["simcycles/s"]
ratio = rates["w256-sparse"] / rates["w256-dense"]
print(f"dense {rates['w256-dense']:.0f} cyc/s, sparse "
      f"{rates['w256-sparse']:.0f} cyc/s -> {ratio:.2f}x")
sys.exit(0 if ratio >= 1.3 else 1)
EOF

echo "== tier-1: mask-scan perf gate (word vs legacy) =="
# The countr_zero word scans in mask_ops.hh must be at least as fast
# as the per-bit iteration they replaced, at both the sparse density
# the subscriber masks live at and the dense squash-wave tail. Both
# variants run in the same process over the same masks, so ambient
# machine drift cancels; medians of three repetitions ride out noise.
./build/bench/perf_simulator \
    --benchmark_filter='BM_MaskScan' \
    --benchmark_min_time=0.5 --benchmark_repetitions=3 \
    --benchmark_out=build/bench/perf_maskscan.json \
    --benchmark_out_format=json >/dev/null 2>&1
python3 - build/bench/perf_maskscan.json <<'EOF'
import json, statistics, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
rates = {}
for b in report["benchmarks"]:
    if b.get("run_type") == "iteration":
        rates.setdefault(b["label"], []).append(b["scan/s"])
ok = True
for bits in (2, 32):
    word = statistics.median(rates[f"word-b{bits}"])
    legacy = statistics.median(rates[f"legacy-b{bits}"])
    ratio = word / legacy
    print(f"avg {bits} bits: legacy {legacy:.0f} scan/s, "
          f"word {word:.0f} scan/s -> {ratio:.2f}x")
    ok = ok and ratio >= 1.0
sys.exit(0 if ok else 1)
EOF

echo "== tier-1: regression vs committed baseline (window 256) =="
# The w256-sparse simulation rate must stay within 3% of the latest
# committed snapshot (BENCH_PR10.json). The original form of this
# gate compared against BENCH_PR5.json, but this container's ambient
# speed drifts a few percent between capture dates (benchmarks this
# repo has never touched again moved by up to 9%), so the baseline is
# re-captured by scripts/bench_snapshot.sh each bench PR and the gate
# tracks the newest snapshot. Measured fresh with three repetitions —
# the median rides out scheduler noise that a single one-second
# sample does not.
./build/bench/perf_simulator \
    --benchmark_filter='BM_OooValueSpeculation/256' \
    --benchmark_min_time=1 --benchmark_repetitions=3 \
    --benchmark_out=build/bench/perf_attrib256.json \
    --benchmark_out_format=json >/dev/null 2>&1
python3 - build/bench/perf_attrib256.json BENCH_PR10.json <<'EOF'
import json, statistics, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
reps = [b["inst/s"] for b in report["benchmarks"]
        if b["label"] == "w256-sparse"
        and b.get("run_type") == "iteration"]
now = statistics.median(reps)
with open(sys.argv[2]) as f:
    baseline = json.load(f)["BM_OooValueSpeculation/w256-sparse"]
ratio = now / baseline
print(f"baseline {baseline:.0f} inst/s, fresh "
      f"{now:.0f} inst/s (median of {len(reps)}) -> {ratio:.3f}x")
sys.exit(0 if ratio >= 0.97 else 1)
EOF

echo "== tier-1: OK =="
