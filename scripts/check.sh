#!/usr/bin/env bash
# Tier-1 verification: the normal build + full test suite, then a
# ThreadSanitizer build of the sweep engine tests. Run from the repo
# root:
#
#   scripts/check.sh
#
# The TSan stage rebuilds into build-tsan/ so it never disturbs the
# primary build tree.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j)

echo "== tier-1: ThreadSanitizer (test_sweep, test_obs) =="
cmake -B build-tsan -S . -DVSIM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target test_sweep test_obs
./build-tsan/tests/test_sweep
./build-tsan/tests/test_obs

echo "== tier-1: trace JSON validity =="
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
./build/tools/vspec_run --workload queens --scale 1 --base \
    --trace-retain 200 --trace-json "$obs_dir/pipeline.json" >/dev/null
./build/tools/vspec_sweep base --quick --scale 1 --jobs 2 \
    --metrics-interval 500 --metrics "$obs_dir/metrics.csv" \
    --trace-json "$obs_dir/sweep.json" >/dev/null
python3 -m json.tool "$obs_dir/pipeline.json" >/dev/null
python3 -m json.tool "$obs_dir/sweep.json" >/dev/null
echo "trace JSON OK"

echo "== tier-1: OK =="
