#!/usr/bin/env bash
# Tier-1 verification: the normal build + full test suite, then a
# ThreadSanitizer build of the sweep engine tests. Run from the repo
# root:
#
#   scripts/check.sh
#
# The TSan stage rebuilds into build-tsan/ so it never disturbs the
# primary build tree.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j)

echo "== tier-1: ThreadSanitizer (test_sweep) =="
cmake -B build-tsan -S . -DVSIM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target test_sweep
./build-tsan/tests/test_sweep

echo "== tier-1: OK =="
